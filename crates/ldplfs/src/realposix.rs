//! `RealPosix`: the POSIX layer over the actual OS file system.
//!
//! Plays the role of libc in our stack. Descriptors are handed out from a
//! private table (they are not kernel fds), but semantics follow POSIX:
//! cursors live in the *open file description*, so `dup`'d descriptors share
//! them — the property the LDPLFS bookkeeping relies on.
//!
//! A `RealPosix` can be rooted at a host directory (`RealPosix::rooted`) so
//! tests and examples operate in a sandbox; paths are then interpreted
//! relative to that root.

use crate::posix::{Errno, Fd, OpenFlags, PosixDirent, PosixLayer, PosixResult, PosixStat, Whence};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// Shared open-file-description state: the file plus its cursor semantics.
struct Description {
    file: Mutex<fs::File>,
    append: bool,
    writable: bool,
    readable: bool,
}

/// The OS-backed POSIX layer.
pub struct RealPosix {
    root: Option<PathBuf>,
    fds: RwLock<HashMap<Fd, Arc<Description>>>,
    next_fd: AtomicI32,
}

impl RealPosix {
    /// Operate on absolute host paths.
    pub fn new() -> RealPosix {
        RealPosix {
            root: None,
            fds: RwLock::new(HashMap::new()),
            next_fd: AtomicI32::new(3), // 0..2 notionally stdio
        }
    }

    /// Operate in a sandbox rooted at `root` (created if missing).
    pub fn rooted(root: impl Into<PathBuf>) -> std::io::Result<RealPosix> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RealPosix {
            root: Some(root),
            fds: RwLock::new(HashMap::new()),
            next_fd: AtomicI32::new(3),
        })
    }

    fn resolve(&self, path: &str) -> PosixResult<PathBuf> {
        match &self.root {
            None => Ok(PathBuf::from(path)),
            Some(root) => {
                let mut out = root.clone();
                for comp in path.split('/') {
                    match comp {
                        "" | "." => {}
                        ".." => return Err(Errno::EINVAL),
                        c => out.push(c),
                    }
                }
                Ok(out)
            }
        }
    }

    fn desc(&self, fd: Fd) -> PosixResult<Arc<Description>> {
        self.fds.read().get(&fd).cloned().ok_or(Errno::EBADF)
    }

    fn install(&self, d: Arc<Description>) -> Fd {
        // relaxed: fd numbers only need to be unique; the atomic add guarantees that without ordering
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.write().insert(fd, d);
        fd
    }

    /// Number of live descriptors (leak checks in tests).
    pub fn open_fds(&self) -> usize {
        self.fds.read().len()
    }
}

impl Default for RealPosix {
    fn default() -> Self {
        Self::new()
    }
}

impl PosixLayer for RealPosix {
    fn open(&self, path: &str, flags: OpenFlags, _mode: u32) -> PosixResult<Fd> {
        let p = self.resolve(path)?;
        let mut opts = fs::OpenOptions::new();
        opts.read(flags.readable()).write(flags.writable());
        if flags.append() {
            opts.append(true);
        }
        if flags.create() {
            if flags.excl() {
                opts.create_new(true);
            } else {
                opts.create(true);
            }
        }
        if flags.trunc() && flags.writable() {
            opts.truncate(true);
        }
        let file = opts.open(&p).map_err(Errno::from)?;
        let md = file.metadata().map_err(Errno::from)?;
        if md.is_dir() {
            return Err(Errno::EISDIR);
        }
        Ok(self.install(Arc::new(Description {
            file: Mutex::new(file),
            append: flags.append(),
            writable: flags.writable(),
            readable: flags.readable(),
        })))
    }

    fn close(&self, fd: Fd) -> PosixResult<()> {
        self.fds.write().remove(&fd).map(|_| ()).ok_or(Errno::EBADF)
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.readable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        f.read(buf).map_err(Errno::from)
    }

    fn write(&self, fd: Fd, buf: &[u8]) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.writable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        f.write(buf).map_err(Errno::from)
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.readable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        let saved = f.stream_position().map_err(Errno::from)?;
        f.seek(SeekFrom::Start(off)).map_err(Errno::from)?;
        let n = f.read(buf).map_err(Errno::from)?;
        f.seek(SeekFrom::Start(saved)).map_err(Errno::from)?;
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, buf: &[u8], off: u64) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.writable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        let saved = f.stream_position().map_err(Errno::from)?;
        f.seek(SeekFrom::Start(off)).map_err(Errno::from)?;
        let n = f.write(buf).map_err(Errno::from)?;
        f.seek(SeekFrom::Start(saved)).map_err(Errno::from)?;
        Ok(n)
    }

    fn readv(&self, fd: Fd, bufs: &mut [&mut [u8]]) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.readable {
            return Err(Errno::EBADF);
        }
        // One lock acquisition for the whole vector: the scatter is atomic
        // with respect to other readers/writers of this description.
        let mut f = d.file.lock();
        let mut total = 0;
        for buf in bufs.iter_mut() {
            if buf.is_empty() {
                continue;
            }
            let n = f.read(buf).map_err(Errno::from)?;
            total += n;
            if n < buf.len() {
                break;
            }
        }
        Ok(total)
    }

    fn writev(&self, fd: Fd, bufs: &[&[u8]]) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.writable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        let mut total = 0;
        for buf in bufs {
            if buf.is_empty() {
                continue;
            }
            let n = f.write(buf).map_err(Errno::from)?;
            total += n;
            if n < buf.len() {
                break;
            }
        }
        Ok(total)
    }

    fn preadv(&self, fd: Fd, bufs: &mut [&mut [u8]], off: u64) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.readable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        let saved = f.stream_position().map_err(Errno::from)?;
        f.seek(SeekFrom::Start(off)).map_err(Errno::from)?;
        let mut total = 0;
        for buf in bufs.iter_mut() {
            if buf.is_empty() {
                continue;
            }
            let n = f.read(buf).map_err(Errno::from)?;
            total += n;
            if n < buf.len() {
                break;
            }
        }
        f.seek(SeekFrom::Start(saved)).map_err(Errno::from)?;
        Ok(total)
    }

    fn pwritev(&self, fd: Fd, bufs: &[&[u8]], off: u64) -> PosixResult<usize> {
        let d = self.desc(fd)?;
        if !d.writable {
            return Err(Errno::EBADF);
        }
        let mut f = d.file.lock();
        let saved = f.stream_position().map_err(Errno::from)?;
        f.seek(SeekFrom::Start(off)).map_err(Errno::from)?;
        let mut total = 0;
        for buf in bufs {
            if buf.is_empty() {
                continue;
            }
            let n = f.write(buf).map_err(Errno::from)?;
            total += n;
            if n < buf.len() {
                break;
            }
        }
        f.seek(SeekFrom::Start(saved)).map_err(Errno::from)?;
        Ok(total)
    }

    fn lseek(&self, fd: Fd, offset: i64, whence: Whence) -> PosixResult<u64> {
        let d = self.desc(fd)?;
        let mut f = d.file.lock();
        let from = match whence {
            Whence::Set => {
                if offset < 0 {
                    return Err(Errno::EINVAL);
                }
                SeekFrom::Start(offset as u64)
            }
            Whence::Cur => SeekFrom::Current(offset),
            Whence::End => SeekFrom::End(offset),
        };
        f.seek(from).map_err(Errno::from)
    }

    fn fsync(&self, fd: Fd) -> PosixResult<()> {
        let d = self.desc(fd)?;
        let r = d.file.lock().sync_data().map_err(Errno::from);
        r
    }

    fn dup(&self, fd: Fd) -> PosixResult<Fd> {
        let d = self.desc(fd)?;
        Ok(self.install(d))
    }

    fn stat(&self, path: &str) -> PosixResult<PosixStat> {
        let md = fs::metadata(self.resolve(path)?).map_err(Errno::from)?;
        Ok(PosixStat {
            size: md.len(),
            is_dir: md.is_dir(),
        })
    }

    fn fstat(&self, fd: Fd) -> PosixResult<PosixStat> {
        let d = self.desc(fd)?;
        let f = d.file.lock();
        let md = f.metadata().map_err(Errno::from)?;
        Ok(PosixStat {
            size: md.len(),
            is_dir: md.is_dir(),
        })
    }

    fn unlink(&self, path: &str) -> PosixResult<()> {
        fs::remove_file(self.resolve(path)?).map_err(Errno::from)
    }

    fn mkdir(&self, path: &str, _mode: u32) -> PosixResult<()> {
        fs::create_dir(self.resolve(path)?).map_err(Errno::from)
    }

    fn rmdir(&self, path: &str) -> PosixResult<()> {
        fs::remove_dir(self.resolve(path)?).map_err(Errno::from)
    }

    fn rename(&self, from: &str, to: &str) -> PosixResult<()> {
        fs::rename(self.resolve(from)?, self.resolve(to)?).map_err(Errno::from)
    }

    fn access(&self, path: &str) -> PosixResult<()> {
        if self.resolve(path)?.exists() {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn truncate(&self, path: &str, len: u64) -> PosixResult<()> {
        let f = fs::OpenOptions::new()
            .write(true)
            .open(self.resolve(path)?)
            .map_err(Errno::from)?;
        f.set_len(len).map_err(Errno::from)
    }

    fn ftruncate(&self, fd: Fd, len: u64) -> PosixResult<()> {
        let d = self.desc(fd)?;
        if !d.writable {
            return Err(Errno::EBADF);
        }
        let r = d.file.lock().set_len(len).map_err(Errno::from);
        r
    }

    fn readdir(&self, path: &str) -> PosixResult<Vec<PosixDirent>> {
        let mut out = Vec::new();
        for ent in fs::read_dir(self.resolve(path)?).map_err(Errno::from)? {
            let ent = ent.map_err(Errno::from)?;
            let is_dir = ent.file_type().map_err(Errno::from)?.is_dir();
            out.push(PosixDirent {
                name: ent.file_name().to_string_lossy().into_owned(),
                is_dir,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

// Suppress an unused-field warning: `append` is configured at open and
// enforced by the OS file handle itself (OpenOptions::append).
impl Description {
    #[allow(dead_code)]
    fn is_append(&self) -> bool {
        self.append
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sandbox(name: &str) -> RealPosix {
        let dir =
            std::env::temp_dir().join(format!("ldplfs-realposix-{}-{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RealPosix::rooted(dir).unwrap()
    }

    const CREATE_RW: OpenFlags = OpenFlags(0o2 | 0o100);

    #[test]
    fn cursor_advances_on_read_write() {
        let p = sandbox("cursor");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        p.write(fd, b"abcdef").unwrap();
        assert_eq!(p.lseek(fd, 0, Whence::Cur).unwrap(), 6);
        p.lseek(fd, 1, Whence::Set).unwrap();
        let mut buf = [0u8; 3];
        p.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"bcd");
        assert_eq!(p.lseek(fd, 0, Whence::Cur).unwrap(), 4);
        p.close(fd).unwrap();
    }

    #[test]
    fn pread_pwrite_leave_cursor_alone() {
        let p = sandbox("prw");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        p.write(fd, b"0123456789").unwrap();
        p.lseek(fd, 4, Whence::Set).unwrap();
        let mut buf = [0u8; 2];
        p.pread(fd, &mut buf, 8).unwrap();
        assert_eq!(&buf, b"89");
        p.pwrite(fd, b"XY", 0).unwrap();
        assert_eq!(p.lseek(fd, 0, Whence::Cur).unwrap(), 4, "cursor untouched");
        p.close(fd).unwrap();
    }

    #[test]
    fn dup_shares_cursor() {
        let p = sandbox("dup");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        p.write(fd, b"abcdef").unwrap();
        p.lseek(fd, 0, Whence::Set).unwrap();
        let fd2 = p.dup(fd).unwrap();
        let mut buf = [0u8; 2];
        p.read(fd, &mut buf).unwrap();
        // fd2 sees the cursor moved by fd's read.
        assert_eq!(p.lseek(fd2, 0, Whence::Cur).unwrap(), 2);
        p.close(fd).unwrap();
        // fd2 still valid after closing fd.
        p.read(fd2, &mut buf).unwrap();
        assert_eq!(&buf, b"cd");
        p.close(fd2).unwrap();
        assert_eq!(p.open_fds(), 0);
    }

    #[test]
    fn append_mode_writes_at_end() {
        let p = sandbox("append");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        p.write(fd, b"base").unwrap();
        p.close(fd).unwrap();
        let fd = p
            .open("/f", OpenFlags::WRONLY | OpenFlags::APPEND, 0o644)
            .unwrap();
        p.write(fd, b"+tail").unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.stat("/f").unwrap().size, 9);
    }

    #[test]
    fn bad_fd_is_ebadf() {
        let p = sandbox("badfd");
        let mut buf = [0u8; 1];
        assert_eq!(p.read(999, &mut buf), Err(Errno::EBADF));
        assert_eq!(p.close(999), Err(Errno::EBADF));
    }

    #[test]
    fn write_on_readonly_fd_is_ebadf() {
        let p = sandbox("romode");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        p.close(fd).unwrap();
        let fd = p.open("/f", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(p.write(fd, b"x"), Err(Errno::EBADF));
        p.close(fd).unwrap();
    }

    #[test]
    fn excl_open_fails_if_exists() {
        let p = sandbox("excl");
        let flags = CREATE_RW | OpenFlags::EXCL;
        let fd = p.open("/f", flags, 0o644).unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.open("/f", flags, 0o644), Err(Errno::EEXIST));
    }

    #[test]
    fn directory_operations() {
        let p = sandbox("dirs");
        p.mkdir("/d", 0o755).unwrap();
        let fd = p.open("/d/f", CREATE_RW, 0o644).unwrap();
        p.close(fd).unwrap();
        let ents = p.readdir("/d").unwrap();
        assert_eq!(ents.len(), 1);
        assert_eq!(ents[0].name, "f");
        assert!(!ents[0].is_dir);
        assert!(p.rmdir("/d").is_err(), "not empty");
        p.unlink("/d/f").unwrap();
        p.rmdir("/d").unwrap();
        assert_eq!(p.access("/d"), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_and_truncate() {
        let p = sandbox("rentrunc");
        let fd = p.open("/a", CREATE_RW, 0o644).unwrap();
        p.write(fd, b"0123456789").unwrap();
        p.close(fd).unwrap();
        p.rename("/a", "/b").unwrap();
        p.truncate("/b", 4).unwrap();
        assert_eq!(p.stat("/b").unwrap().size, 4);
        let fd = p.open("/b", CREATE_RW, 0o644).unwrap();
        p.ftruncate(fd, 2).unwrap();
        assert_eq!(p.fstat(fd).unwrap().size, 2);
        p.close(fd).unwrap();
    }

    #[test]
    fn lseek_set_negative_is_einval() {
        let p = sandbox("seekneg");
        let fd = p.open("/f", CREATE_RW, 0o644).unwrap();
        assert_eq!(p.lseek(fd, -1, Whence::Set), Err(Errno::EINVAL));
        p.close(fd).unwrap();
    }
}
