//! Shim construction helpers.
//!
//! The real LDPLFS is configured by exporting a single environment variable
//! and reading the system `plfsrc`. [`LdPlfsBuilder`] is the programmatic
//! equivalent; [`from_plfsrc`] wires a parsed `plfsrc` to backing stores
//! produced by a caller-supplied factory (real directories, in-memory, or
//! simulated).

use crate::posix::{Errno, PosixLayer, PosixResult};
use crate::shim::{LdPlfs, ShimMount};
use plfs::{Backing, MountSpec, Plfs, PlfsRc, SpreadBacking};
use std::sync::Arc;

/// Incremental builder for an [`LdPlfs`] shim.
pub struct LdPlfsBuilder {
    under: Arc<dyn PosixLayer>,
    mounts: Vec<ShimMount>,
}

impl LdPlfsBuilder {
    /// Start from the underlying ("real libc") layer.
    pub fn new(under: Arc<dyn PosixLayer>) -> LdPlfsBuilder {
        LdPlfsBuilder {
            under,
            mounts: Vec::new(),
        }
    }

    /// Add a mount serving `mount_point` with an existing [`Plfs`].
    pub fn mount(mut self, mount_point: impl Into<String>, plfs: Plfs) -> LdPlfsBuilder {
        self.mounts.push(ShimMount {
            mount_point: mount_point.into().trim_end_matches('/').to_string(),
            plfs,
        });
        self
    }

    /// Finish, creating the scratch directory on the underlying layer.
    pub fn build(self) -> PosixResult<LdPlfs> {
        if self.mounts.is_empty() {
            return Err(Errno::EINVAL);
        }
        LdPlfs::new(self.under, self.mounts)
    }
}

/// Build a [`Plfs`] instance for one parsed [`MountSpec`], resolving backend
/// paths through `backing_for`.
pub fn plfs_for_spec(
    spec: &MountSpec,
    backing_for: &mut dyn FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<Plfs> {
    let backing: Arc<dyn Backing> = if spec.backends.len() == 1 {
        backing_for(&spec.backends[0])
    } else {
        let backends: Vec<Arc<dyn Backing>> =
            spec.backends.iter().map(|b| backing_for(b)).collect();
        Arc::new(SpreadBacking::new(backends).map_err(Errno::from)?)
    };
    Ok(Plfs::new(backing)
        .with_params(spec.params)
        .with_index_buffer(spec.index_buffer_entries))
}

/// Build a shim from `plfsrc` text. `backing_for` maps each backend path in
/// the file to a backing store.
pub fn from_plfsrc(
    under: Arc<dyn PosixLayer>,
    plfsrc: &str,
    mut backing_for: impl FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<LdPlfs> {
    let rc = PlfsRc::parse(plfsrc).map_err(Errno::from)?;
    let mut builder = LdPlfsBuilder::new(under);
    for spec in &rc.mounts {
        // The write conf replaces the whole struct, so the per-mount index
        // buffer depth is layered back on top of the global knobs.
        let write_conf = rc
            .write_conf()
            .with_index_buffer_entries(spec.index_buffer_entries);
        let plfs = plfs_for_spec(spec, &mut backing_for)?
            .with_read_conf(rc.read_conf())
            .with_write_conf(write_conf)
            .with_meta_conf(rc.meta_conf())
            .with_list_io_conf(rc.list_io_conf());
        builder = builder.mount(spec.mount_point.clone(), plfs);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posix::{OpenFlags, PosixLayer};
    use crate::realposix::RealPosix;
    use plfs::MemBacking;

    fn under(name: &str) -> Arc<dyn PosixLayer> {
        let dir =
            std::env::temp_dir().join(format!("ldplfs-config-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(RealPosix::rooted(dir).unwrap())
    }

    #[test]
    fn builder_requires_a_mount() {
        assert!(LdPlfsBuilder::new(under("empty")).build().is_err());
    }

    #[test]
    fn builder_trims_trailing_slash() {
        let s = LdPlfsBuilder::new(under("trim"))
            .mount("/plfs/", Plfs::new(Arc::new(MemBacking::new())))
            .build()
            .unwrap();
        assert_eq!(s.mounts()[0].mount_point, "/plfs");
        let fd = s
            .open("/plfs/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.close(fd).unwrap();
        assert!(s.mounts()[0].plfs.is_container("/f"));
    }

    #[test]
    fn from_plfsrc_builds_all_mounts() {
        let rc = "mount_point /ckpt\nbackends /be1\nnum_hostdirs 4\n\
                  mount_point /viz\nbackends /be2,/be3\n";
        let s = from_plfsrc(under("rc"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        assert_eq!(s.mounts().len(), 2);
        assert_eq!(s.mounts()[0].plfs.defaults().num_hostdirs, 4);
        // The two-backend mount got a spread backing; writing works.
        let fd = s
            .open("/viz/dump", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"spread").unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.stat("/viz/dump").unwrap().size, 6);
    }

    #[test]
    fn from_plfsrc_plumbs_read_conf() {
        let rc = "threadpool_size 4\nread_fanout_threshold 2048\nhandle_cache_shards 2\n\
                  index_memory_bytes 65536\n\
                  mount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("conf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.read_conf();
        assert_eq!(conf.threads, 4);
        assert_eq!(conf.fanout_threshold, 2048);
        assert_eq!(conf.handle_shards, 2);
        assert_eq!(conf.index_memory_bytes, 65536);
        assert!(conf.bounded_index());
    }

    #[test]
    fn from_plfsrc_plumbs_compaction_threshold() {
        let rc = "compact_droppings_threshold 32\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("cconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        assert_eq!(
            s.mounts()[0].plfs.write_conf().compact_droppings_threshold,
            32
        );
    }

    #[test]
    fn from_plfsrc_plumbs_write_conf() {
        let rc = "write_shards 2\ndata_buffer_bytes 8192\nincremental_refresh off\n\
                  mount_point /ckpt\nbackends /be\nindex_buffer_entries 99\n";
        let s = from_plfsrc(under("wconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.write_conf();
        assert_eq!(conf.write_shards, 2);
        assert_eq!(conf.data_buffer_bytes, 8192);
        assert!(!conf.incremental_refresh);
        // The per-mount index buffer depth survives the global write conf.
        assert_eq!(conf.index_buffer_entries, 99);
    }

    #[test]
    fn from_plfsrc_plumbs_meta_conf() {
        let rc = "meta_cache_entries 64\nmeta_cache_shards 2\nopen_markers lazy\n\
                  mount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("mconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.meta_conf();
        assert_eq!(conf.meta_cache_entries, 64);
        assert_eq!(conf.meta_cache_shards, 2);
        assert_eq!(conf.open_markers, plfs::OpenMarkers::Lazy);
    }

    #[test]
    fn from_plfsrc_plumbs_list_io_conf() {
        let rc = "list_io off\nlist_io_max_extents 7\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("lconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.list_io_conf();
        assert!(!conf.enabled);
        assert_eq!(conf.max_extents, 7);
    }

    #[test]
    fn from_plfsrc_rejects_bad_config() {
        assert!(from_plfsrc(under("bad"), "mount_point /x\n", |_| {
            Arc::new(MemBacking::new())
        })
        .is_err());
    }
}
