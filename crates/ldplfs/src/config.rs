//! Shim construction helpers.
//!
//! The real LDPLFS is configured by exporting a single environment variable
//! and reading the system `plfsrc`. [`LdPlfsBuilder`] is the programmatic
//! equivalent; [`from_plfsrc`] wires a parsed `plfsrc` to backing stores
//! produced by a caller-supplied factory (real directories, in-memory, or
//! simulated).

use crate::posix::{Errno, PosixLayer, PosixResult};
use crate::shim::{LdPlfs, ShimMount};
use plfs::{
    BackendConf, BackendKind, Backing, MountSpec, ObjectBacking, Plfs, PlfsRc, SpreadBacking,
    TieredBacking,
};
use std::sync::Arc;

/// Incremental builder for an [`LdPlfs`] shim.
pub struct LdPlfsBuilder {
    under: Arc<dyn PosixLayer>,
    mounts: Vec<ShimMount>,
}

impl LdPlfsBuilder {
    /// Start from the underlying ("real libc") layer.
    pub fn new(under: Arc<dyn PosixLayer>) -> LdPlfsBuilder {
        LdPlfsBuilder {
            under,
            mounts: Vec::new(),
        }
    }

    /// Add a mount serving `mount_point` with an existing [`Plfs`].
    pub fn mount(mut self, mount_point: impl Into<String>, plfs: Plfs) -> LdPlfsBuilder {
        self.mounts.push(ShimMount {
            mount_point: mount_point.into().trim_end_matches('/').to_string(),
            plfs,
        });
        self
    }

    /// Finish, creating the scratch directory on the underlying layer.
    pub fn build(self) -> PosixResult<LdPlfs> {
        if self.mounts.is_empty() {
            return Err(Errno::EINVAL);
        }
        LdPlfs::new(self.under, self.mounts)
    }
}

/// Resolve a run of backend paths into one backing: a single path maps
/// directly, several become a [`SpreadBacking`].
fn spread(
    paths: &[String],
    backing_for: &mut dyn FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<Arc<dyn Backing>> {
    if paths.len() == 1 {
        Ok(backing_for(&paths[0]))
    } else {
        let backends: Vec<Arc<dyn Backing>> = paths.iter().map(|b| backing_for(b)).collect();
        Ok(Arc::new(SpreadBacking::new(backends).map_err(Errno::from)?))
    }
}

/// Compose the backend stack the global `backend` plfsrc key asks for.
///
/// * `direct`/`batched` — the classic spread over every backend path (the
///   batched submission layer is layered on later by
///   [`Plfs::with_backend_conf`]).
/// * `tiered` — the first backend path is the fast (burst-buffer) tier, the
///   remaining path(s) the slow tier; fewer than two paths is a config error.
/// * `object` — the spread is re-exposed as an object store of immutable
///   whole-dropping objects.
fn composed_backing(
    spec: &MountSpec,
    kind: BackendKind,
    conf: BackendConf,
    backing_for: &mut dyn FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<Arc<dyn Backing>> {
    match kind {
        BackendKind::Direct | BackendKind::Batched => spread(&spec.backends, backing_for),
        BackendKind::Object => Ok(Arc::new(ObjectBacking::over(spread(
            &spec.backends,
            backing_for,
        )?))),
        BackendKind::Tiered => {
            if spec.backends.len() < 2 {
                // A burst buffer needs a fast tier AND somewhere to destage.
                return Err(Errno::EINVAL);
            }
            let fast = backing_for(&spec.backends[0]);
            let slow = spread(&spec.backends[1..], backing_for)?;
            Ok(Arc::new(TieredBacking::new(fast, slow, conf)))
        }
    }
}

/// Build a [`Plfs`] instance for one parsed [`MountSpec`], resolving backend
/// paths through `backing_for`. Uses the default direct backend stack; see
/// [`plfs_for_spec_with_backend`] for the scale-out variants.
pub fn plfs_for_spec(
    spec: &MountSpec,
    backing_for: &mut dyn FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<Plfs> {
    plfs_for_spec_with_backend(
        spec,
        BackendKind::Direct,
        BackendConf::default(),
        backing_for,
    )
}

/// Build a [`Plfs`] instance for one parsed [`MountSpec`] with an explicit
/// backend stack ([`BackendKind`]) and submission-layer knobs.
pub fn plfs_for_spec_with_backend(
    spec: &MountSpec,
    kind: BackendKind,
    mut conf: BackendConf,
    backing_for: &mut dyn FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<Plfs> {
    // `backend batched` with no explicit depth still means "turn it on".
    if kind == BackendKind::Batched && !conf.batching() {
        conf = conf.with_submit_depth(plfs::conf::DEFAULT_SUBMIT_DEPTH);
    }
    let backing = composed_backing(spec, kind, conf, backing_for)?;
    Ok(Plfs::new(backing)
        .with_params(spec.params)
        .with_index_buffer(spec.index_buffer_entries)
        .with_backend_conf(conf))
}

/// Build a shim from `plfsrc` text. `backing_for` maps each backend path in
/// the file to a backing store.
pub fn from_plfsrc(
    under: Arc<dyn PosixLayer>,
    plfsrc: &str,
    mut backing_for: impl FnMut(&str) -> Arc<dyn Backing>,
) -> PosixResult<LdPlfs> {
    let rc = PlfsRc::parse(plfsrc).map_err(Errno::from)?;
    let mut builder = LdPlfsBuilder::new(under);
    for spec in &rc.mounts {
        // The write conf replaces the whole struct, so the per-mount index
        // buffer depth is layered back on top of the global knobs.
        let write_conf = rc
            .write_conf()
            .with_index_buffer_entries(spec.index_buffer_entries);
        let plfs =
            plfs_for_spec_with_backend(spec, rc.backend, rc.backend_conf(), &mut backing_for)?
                .with_read_conf(rc.read_conf())
                .with_write_conf(write_conf)
                .with_meta_conf(rc.meta_conf())
                .with_list_io_conf(rc.list_io_conf())
                .with_cache_conf(rc.cache_conf());
        builder = builder.mount(spec.mount_point.clone(), plfs);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posix::{OpenFlags, PosixLayer};
    use crate::realposix::RealPosix;
    use plfs::MemBacking;

    fn under(name: &str) -> Arc<dyn PosixLayer> {
        let dir =
            std::env::temp_dir().join(format!("ldplfs-config-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(RealPosix::rooted(dir).unwrap())
    }

    #[test]
    fn builder_requires_a_mount() {
        assert!(LdPlfsBuilder::new(under("empty")).build().is_err());
    }

    #[test]
    fn builder_trims_trailing_slash() {
        let s = LdPlfsBuilder::new(under("trim"))
            .mount("/plfs/", Plfs::new(Arc::new(MemBacking::new())))
            .build()
            .unwrap();
        assert_eq!(s.mounts()[0].mount_point, "/plfs");
        let fd = s
            .open("/plfs/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.close(fd).unwrap();
        assert!(s.mounts()[0].plfs.is_container("/f"));
    }

    #[test]
    fn from_plfsrc_builds_all_mounts() {
        let rc = "mount_point /ckpt\nbackends /be1\nnum_hostdirs 4\n\
                  mount_point /viz\nbackends /be2,/be3\n";
        let s = from_plfsrc(under("rc"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        assert_eq!(s.mounts().len(), 2);
        assert_eq!(s.mounts()[0].plfs.defaults().num_hostdirs, 4);
        // The two-backend mount got a spread backing; writing works.
        let fd = s
            .open("/viz/dump", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"spread").unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.stat("/viz/dump").unwrap().size, 6);
    }

    #[test]
    fn from_plfsrc_plumbs_read_conf() {
        let rc = "threadpool_size 4\nread_fanout_threshold 2048\nhandle_cache_shards 2\n\
                  index_memory_bytes 65536\n\
                  mount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("conf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.read_conf();
        assert_eq!(conf.threads, 4);
        assert_eq!(conf.fanout_threshold, 2048);
        assert_eq!(conf.handle_shards, 2);
        assert_eq!(conf.index_memory_bytes, 65536);
        assert!(conf.bounded_index());
    }

    #[test]
    fn from_plfsrc_plumbs_compaction_threshold() {
        let rc = "compact_droppings_threshold 32\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("cconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        assert_eq!(
            s.mounts()[0].plfs.write_conf().compact_droppings_threshold,
            32
        );
    }

    #[test]
    fn from_plfsrc_plumbs_write_conf() {
        let rc = "write_shards 2\ndata_buffer_bytes 8192\nincremental_refresh off\n\
                  mount_point /ckpt\nbackends /be\nindex_buffer_entries 99\n";
        let s = from_plfsrc(under("wconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.write_conf();
        assert_eq!(conf.write_shards, 2);
        assert_eq!(conf.data_buffer_bytes, 8192);
        assert!(!conf.incremental_refresh);
        // The per-mount index buffer depth survives the global write conf.
        assert_eq!(conf.index_buffer_entries, 99);
    }

    #[test]
    fn from_plfsrc_plumbs_meta_conf() {
        let rc = "meta_cache_entries 64\nmeta_cache_shards 2\nopen_markers lazy\n\
                  mount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("mconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.meta_conf();
        assert_eq!(conf.meta_cache_entries, 64);
        assert_eq!(conf.meta_cache_shards, 2);
        assert_eq!(conf.open_markers, plfs::OpenMarkers::Lazy);
    }

    #[test]
    fn from_plfsrc_plumbs_list_io_conf() {
        let rc = "list_io off\nlist_io_max_extents 7\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("lconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.list_io_conf();
        assert!(!conf.enabled);
        assert_eq!(conf.max_extents, 7);
    }

    #[test]
    fn from_plfsrc_plumbs_cache_conf() {
        let rc = "data_cache_mbs 4\ndata_cache_block_kbs 8\nreadahead_kbs 16\n\
                  readahead_max_kbs 128\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("dcconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.cache_conf();
        assert!(conf.enabled());
        assert_eq!(conf.cache_bytes, 4 << 20);
        assert_eq!(conf.block_bytes, 8 << 10);
        assert_eq!(conf.readahead_min, 16 << 10);
        assert_eq!(conf.readahead_max, 128 << 10);
        // Cached reads still round-trip through the shim.
        let fd = s
            .open("/ckpt/dump", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"cached bytes").unwrap();
        s.lseek(fd, 0, crate::posix::Whence::Set).unwrap();
        let mut buf = [0u8; 12];
        assert_eq!(s.read(fd, &mut buf).unwrap(), 12);
        assert_eq!(&buf, b"cached bytes");
        s.close(fd).unwrap();
        // Plain plfsrc leaves the data cache off.
        let s = from_plfsrc(under("dcoff"), "mount_point /ckpt\nbackends /be\n", |_| {
            Arc::new(MemBacking::new())
        })
        .unwrap();
        assert!(!s.mounts()[0].plfs.cache_conf().enabled());
    }

    #[test]
    fn from_plfsrc_plumbs_backend_conf() {
        // Tiered: first backend path is the fast tier, rest the slow tier,
        // and the submission knobs ride along into the mount's Plfs.
        let rc = "backend tiered\nsubmit_depth 8\nsubmit_workers 2\ndestage_threshold 16\n\
                  mount_point /ckpt\nbackends /fast,/slow\n";
        let s = from_plfsrc(under("bconf"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let conf = s.mounts()[0].plfs.backend_conf();
        assert_eq!(conf.submit_depth, 8);
        assert_eq!(conf.submit_workers, 2);
        assert_eq!(conf.destage_threshold, 16);
        assert!(conf.batching());
        // The composed stack still round-trips data end to end.
        let fd = s
            .open("/ckpt/dump", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"staged").unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.stat("/ckpt/dump").unwrap().size, 6);
    }

    #[test]
    fn from_plfsrc_batched_defaults_depth_on() {
        // `backend batched` alone turns the submission layer on.
        let rc = "backend batched\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("bdef"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        assert!(s.mounts()[0].plfs.backend_conf().batching());
        // Plain plfsrc leaves it off.
        let s = from_plfsrc(under("bdef2"), "mount_point /ckpt\nbackends /be\n", |_| {
            Arc::new(MemBacking::new())
        })
        .unwrap();
        assert!(!s.mounts()[0].plfs.backend_conf().batching());
    }

    #[test]
    fn from_plfsrc_tiered_needs_two_backends() {
        let rc = "backend tiered\nmount_point /ckpt\nbackends /only\n";
        assert!(from_plfsrc(under("b1"), rc, |_| Arc::new(MemBacking::new())).is_err());
    }

    #[test]
    fn from_plfsrc_object_backend_round_trips() {
        let rc = "backend object\nmount_point /ckpt\nbackends /be\n";
        let s = from_plfsrc(under("bobj"), rc, |_| Arc::new(MemBacking::new())).unwrap();
        let fd = s
            .open("/ckpt/dump", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"objects").unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.stat("/ckpt/dump").unwrap().size, 7);
    }

    #[test]
    fn from_plfsrc_rejects_bad_config() {
        assert!(from_plfsrc(under("bad"), "mount_point /x\n", |_| {
            Arc::new(MemBacking::new())
        })
        .is_err());
    }
}
