//! # ldplfs — POSIX interposition shim retargeting file operations to PLFS
//!
//! The Rust reproduction of *LDPLFS: Improving I/O Performance Without
//! Application Modification* (Wright et al., 2012). The original is a
//! dynamic library loaded via `LD_PRELOAD` that overloads POSIX file symbols
//! and retargets calls on paths inside PLFS mount points to the PLFS API.
//! Here the interposition seam is the [`PosixLayer`] trait: applications
//! written against it run identically over the real OS
//! ([`RealPosix`]) or over the interposing shim ([`LdPlfs`]) — switching
//! the layer is this crate's equivalent of exporting `LD_PRELOAD`.
//!
//! The shim reproduces the paper's two bookkeeping mechanisms exactly
//! (§III.A): POSIX descriptor synthesis by opening a scratch file, and PLFS
//! file-pointer maintenance through `lseek` on that descriptor. See
//! [`shim`] for details.
//!
//! ```
//! use std::sync::Arc;
//! use ldplfs::{LdPlfsBuilder, PosixLayer, OpenFlags, RealPosix};
//! use plfs::{Plfs, MemBacking};
//!
//! let tmp = std::env::temp_dir().join(format!("ldplfs-doc-{}", std::process::id()));
//! let under = Arc::new(RealPosix::rooted(tmp).unwrap());
//! let shim = LdPlfsBuilder::new(under)
//!     .mount("/plfs", Plfs::new(Arc::new(MemBacking::new())))
//!     .build()
//!     .unwrap();
//!
//! // An unmodified "application": plain POSIX calls.
//! let fd = shim.open("/plfs/ckpt", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644).unwrap();
//! shim.write(fd, b"transparent!").unwrap();
//! shim.close(fd).unwrap();
//! assert_eq!(shim.stat("/plfs/ckpt").unwrap().size, 12);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod posix;
pub mod realposix;
pub mod shim;
pub mod stats;
pub mod stdio;

pub use config::{from_plfsrc, plfs_for_spec, plfs_for_spec_with_backend, LdPlfsBuilder};
pub use posix::{Errno, Fd, OpenFlags, PosixDirent, PosixLayer, PosixResult, PosixStat, Whence};
pub use realposix::RealPosix;
pub use shim::{clear_virtual_pid, current_pid, set_virtual_pid, LdPlfs, ShimMount};
pub use stats::{OpClass, ShimStats};
pub use stdio::CFile;
