//! Interception counters and the shim's hook into the unified trace layer.
//!
//! LDPLFS's value proposition is transparency; these counters let tests and
//! users verify *what* was intercepted versus passed through to the real
//! POSIX layer (the paper's Figure 2 control flow, made observable). The
//! counters stay relaxed atomics so the hot path is a couple of adds; the
//! richer per-op records (path, bytes, latency) go through
//! [`iotrace::global`] under the [`iotrace::Layer::Shim`] layer, using the
//! [`OpClass::kind`] mapping below, and cost nothing while tracing is off.

use std::sync::atomic::{AtomicU64, Ordering};

/// Classes of POSIX operations the shim counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `open`
    Open,
    /// `read`/`pread`
    Read,
    /// `write`/`pwrite`
    Write,
    /// `lseek`
    Seek,
    /// `close`
    Close,
    /// Everything else (stat, unlink, mkdir, …)
    Meta,
}

impl OpClass {
    /// The unified trace-schema op kind this class maps to (what shim
    /// records are tagged with in JSONL output and snapshots).
    pub fn kind(self) -> iotrace::OpKind {
        match self {
            OpClass::Open => iotrace::OpKind::Open,
            OpClass::Read => iotrace::OpKind::Read,
            OpClass::Write => iotrace::OpKind::Write,
            OpClass::Seek => iotrace::OpKind::Seek,
            OpClass::Close => iotrace::OpKind::Close,
            OpClass::Meta => iotrace::OpKind::Meta,
        }
    }
}

const CLASSES: usize = 6;

/// Per-class intercepted/passthrough counters. Cheap (relaxed atomics) and
/// shared by reference from the shim.
#[derive(Debug, Default)]
pub struct ShimStats {
    intercepted: [AtomicU64; CLASSES],
    passthrough: [AtomicU64; CLASSES],
}

impl ShimStats {
    /// Record an operation retargeted to PLFS.
    pub fn hit(&self, op: OpClass) {
        // relaxed: monotonic op counters; totals are read statistically, never for synchronization
        self.intercepted[op as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record an operation forwarded to the underlying layer.
    pub fn miss(&self, op: OpClass) {
        // relaxed: monotonic op counters; totals are read statistically, never for synchronization
        self.passthrough[op as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count of intercepted operations of a class.
    pub fn intercepted(&self, op: OpClass) -> u64 {
        // relaxed: statistical read of a monotonic counter
        self.intercepted[op as usize].load(Ordering::Relaxed)
    }

    /// Count of passed-through operations of a class.
    pub fn passthrough(&self, op: OpClass) -> u64 {
        // relaxed: statistical read of a monotonic counter
        self.passthrough[op as usize].load(Ordering::Relaxed)
    }

    /// Total intercepted operations.
    pub fn total_intercepted(&self) -> u64 {
        self.intercepted
            .iter()
            // relaxed: summing a snapshot; torn cross-counter views are acceptable
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total passed-through operations.
    pub fn total_passthrough(&self) -> u64 {
        self.passthrough
            .iter()
            // relaxed: summing a snapshot; torn cross-counter views are acceptable
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = ShimStats::default();
        s.hit(OpClass::Open);
        s.hit(OpClass::Write);
        s.hit(OpClass::Write);
        s.miss(OpClass::Open);
        assert_eq!(s.intercepted(OpClass::Open), 1);
        assert_eq!(s.intercepted(OpClass::Write), 2);
        assert_eq!(s.passthrough(OpClass::Open), 1);
        assert_eq!(s.total_intercepted(), 3);
        assert_eq!(s.total_passthrough(), 1);
    }
}
