//! A C-stdio-style buffered file over any [`PosixLayer`].
//!
//! The UNIX tools of the paper's Table II (`cp`, `cat`, `grep`, `md5sum`)
//! are stdio programs: they call `fopen`/`fread`/`fgets`, which libc
//! implements over `open`/`read`. [`CFile`] supplies that layer, so our tool
//! reimplementations exercise the shim through the same call pattern the
//! real tools would.

use crate::posix::{Errno, Fd, OpenFlags, PosixLayer, PosixResult, Whence};
use std::sync::Arc;

/// Default stdio buffer size (glibc's BUFSIZ).
pub const BUFSIZ: usize = 8192;

/// Buffered file handle (`FILE*` analogue).
pub struct CFile {
    layer: Arc<dyn PosixLayer>,
    fd: Fd,
    /// Read buffer with a valid window `[rd_pos, rd_len)`.
    rbuf: Vec<u8>,
    rd_pos: usize,
    rd_len: usize,
    /// Write buffer; flushed when full or on `fflush`/`fclose`.
    wbuf: Vec<u8>,
    eof: bool,
    writable: bool,
    readable: bool,
}

/// Parse a C `fopen` mode string into open flags.
pub fn parse_mode(mode: &str) -> PosixResult<OpenFlags> {
    let plus = mode.contains('+');
    Ok(match mode.chars().next() {
        Some('r') if plus => OpenFlags::RDWR,
        Some('r') => OpenFlags::RDONLY,
        Some('w') if plus => OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::TRUNC,
        Some('w') => OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
        Some('a') if plus => OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::APPEND,
        Some('a') => OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND,
        _ => return Err(Errno::EINVAL),
    })
}

impl CFile {
    /// `fopen`.
    pub fn open(layer: Arc<dyn PosixLayer>, path: &str, mode: &str) -> PosixResult<CFile> {
        let flags = parse_mode(mode)?;
        let fd = layer.open(path, flags, 0o644)?;
        Ok(CFile {
            layer,
            fd,
            rbuf: vec![0; BUFSIZ],
            rd_pos: 0,
            rd_len: 0,
            wbuf: Vec::with_capacity(BUFSIZ),
            eof: false,
            writable: flags.writable(),
            readable: flags.readable(),
        })
    }

    /// `fread`: fill as much of `out` as possible; returns bytes read
    /// (0 at EOF).
    pub fn read(&mut self, out: &mut [u8]) -> PosixResult<usize> {
        if !self.readable {
            return Err(Errno::EBADF);
        }
        self.flush()?;
        let mut copied = 0;
        while copied < out.len() {
            if self.rd_pos == self.rd_len {
                if self.eof {
                    break;
                }
                // Large reads bypass the buffer, like glibc.
                if out.len() - copied >= self.rbuf.len() {
                    let n = self.layer.read(self.fd, &mut out[copied..])?;
                    if n == 0 {
                        self.eof = true;
                        break;
                    }
                    copied += n;
                    continue;
                }
                let n = self.layer.read(self.fd, &mut self.rbuf)?;
                if n == 0 {
                    self.eof = true;
                    break;
                }
                self.rd_pos = 0;
                self.rd_len = n;
            }
            let take = (self.rd_len - self.rd_pos).min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&self.rbuf[self.rd_pos..self.rd_pos + take]);
            self.rd_pos += take;
            copied += take;
        }
        Ok(copied)
    }

    /// `fgets`-alike: read up to and including the next `\n` into `line`
    /// (cleared first). Returns false at EOF with nothing read.
    pub fn read_line(&mut self, line: &mut Vec<u8>) -> PosixResult<bool> {
        line.clear();
        loop {
            if self.rd_pos == self.rd_len {
                if self.eof {
                    return Ok(!line.is_empty());
                }
                self.flush()?;
                let n = self.layer.read(self.fd, &mut self.rbuf)?;
                if n == 0 {
                    self.eof = true;
                    return Ok(!line.is_empty());
                }
                self.rd_pos = 0;
                self.rd_len = n;
            }
            let window = &self.rbuf[self.rd_pos..self.rd_len];
            match window.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&window[..=i]);
                    self.rd_pos += i + 1;
                    return Ok(true);
                }
                None => {
                    line.extend_from_slice(window);
                    self.rd_pos = self.rd_len;
                }
            }
        }
    }

    /// `fwrite`: buffer `data`, flushing full buffers through the layer.
    pub fn write(&mut self, data: &[u8]) -> PosixResult<usize> {
        if !self.writable {
            return Err(Errno::EBADF);
        }
        self.discard_read_buffer()?;
        if self.wbuf.len() + data.len() >= BUFSIZ {
            self.flush()?;
            if data.len() >= BUFSIZ {
                // Large writes bypass the buffer.
                let mut done = 0;
                while done < data.len() {
                    done += self.layer.write(self.fd, &data[done..])?;
                }
                return Ok(data.len());
            }
        }
        self.wbuf.extend_from_slice(data);
        Ok(data.len())
    }

    /// `fflush`.
    pub fn flush(&mut self) -> PosixResult<()> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        let mut done = 0;
        while done < self.wbuf.len() {
            done += self.layer.write(self.fd, &self.wbuf[done..])?;
        }
        self.wbuf.clear();
        Ok(())
    }

    /// If we buffered ahead on reads, rewind the underlying cursor so a
    /// write lands where the application thinks the stream is.
    fn discard_read_buffer(&mut self) -> PosixResult<()> {
        let ahead = (self.rd_len - self.rd_pos) as i64;
        if ahead > 0 {
            self.layer.lseek(self.fd, -ahead, Whence::Cur)?;
        }
        self.rd_pos = 0;
        self.rd_len = 0;
        self.eof = false;
        Ok(())
    }

    /// `fseek`; clears EOF and buffers.
    pub fn seek(&mut self, offset: i64, whence: Whence) -> PosixResult<u64> {
        self.flush()?;
        // Account for read-ahead when seeking relative to "current".
        let logical_adjust = match whence {
            Whence::Cur => (self.rd_len - self.rd_pos) as i64,
            _ => 0,
        };
        self.rd_pos = 0;
        self.rd_len = 0;
        self.eof = false;
        self.layer.lseek(self.fd, offset - logical_adjust, whence)
    }

    /// `ftell`: logical stream position (cursor minus read-ahead).
    pub fn tell(&mut self) -> PosixResult<u64> {
        let cur = self.layer.lseek(self.fd, 0, Whence::Cur)?;
        Ok(cur - (self.rd_len - self.rd_pos) as u64 + self.wbuf.len() as u64)
    }

    /// `feof`.
    pub fn is_eof(&self) -> bool {
        self.eof && self.rd_pos == self.rd_len
    }

    /// `fclose`: flush and close. Also called from `Drop`.
    pub fn close(mut self) -> PosixResult<()> {
        self.flush()?;
        let r = self.layer.close(self.fd);
        self.fd = -1;
        r
    }
}

impl Drop for CFile {
    fn drop(&mut self) {
        if self.fd >= 0 {
            let _ = self.flush();
            let _ = self.layer.close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realposix::RealPosix;

    fn layer(name: &str) -> Arc<dyn PosixLayer> {
        let dir =
            std::env::temp_dir().join(format!("ldplfs-stdio-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(RealPosix::rooted(dir).unwrap())
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode("r").unwrap(), OpenFlags::RDONLY);
        assert!(parse_mode("w").unwrap().trunc());
        assert!(parse_mode("a").unwrap().append());
        assert!(parse_mode("r+").unwrap().writable());
        assert!(parse_mode("w+").unwrap().readable());
        assert!(parse_mode("x").is_err());
    }

    #[test]
    fn write_then_read_back() {
        let l = layer("wr");
        let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
        f.write(b"hello stdio\n").unwrap();
        f.close().unwrap();
        let mut f = CFile::open(l, "/f", "r").unwrap();
        let mut buf = [0u8; 64];
        let n = f.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello stdio\n");
        assert_eq!(f.read(&mut buf).unwrap(), 0);
        assert!(f.is_eof());
    }

    #[test]
    fn buffering_delays_small_writes() {
        let l = layer("buf");
        let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
        f.write(b"tiny").unwrap();
        assert_eq!(l.stat("/f").unwrap().size, 0, "still buffered");
        f.flush().unwrap();
        assert_eq!(l.stat("/f").unwrap().size, 4);
        f.close().unwrap();
    }

    #[test]
    fn large_write_bypasses_buffer() {
        let l = layer("big");
        let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
        let big = vec![7u8; BUFSIZ * 3];
        f.write(&big).unwrap();
        assert_eq!(l.stat("/f").unwrap().size, (BUFSIZ * 3) as u64);
        f.close().unwrap();
    }

    #[test]
    fn read_line_splits_on_newlines() {
        let l = layer("lines");
        let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
        f.write(b"alpha\nbeta\ngamma").unwrap();
        f.close().unwrap();
        let mut f = CFile::open(l, "/f", "r").unwrap();
        let mut line = Vec::new();
        assert!(f.read_line(&mut line).unwrap());
        assert_eq!(line, b"alpha\n");
        assert!(f.read_line(&mut line).unwrap());
        assert_eq!(line, b"beta\n");
        assert!(f.read_line(&mut line).unwrap());
        assert_eq!(line, b"gamma", "final unterminated line");
        assert!(!f.read_line(&mut line).unwrap());
    }

    #[test]
    fn seek_and_tell_account_for_buffers() {
        let l = layer("seek");
        let mut f = CFile::open(l.clone(), "/f", "w+").unwrap();
        f.write(b"0123456789").unwrap();
        assert_eq!(f.tell().unwrap(), 10, "tell sees buffered bytes");
        f.seek(0, Whence::Set).unwrap();
        let mut two = [0u8; 2];
        f.read(&mut two).unwrap();
        assert_eq!(f.tell().unwrap(), 2, "tell subtracts read-ahead");
        f.seek(2, Whence::Cur).unwrap();
        f.read(&mut two).unwrap();
        assert_eq!(&two, b"45");
        f.close().unwrap();
    }

    #[test]
    fn append_mode_appends() {
        let l = layer("app");
        let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
        f.write(b"AB").unwrap();
        f.close().unwrap();
        let mut f = CFile::open(l.clone(), "/f", "a").unwrap();
        f.write(b"CD").unwrap();
        f.close().unwrap();
        assert_eq!(l.stat("/f").unwrap().size, 4);
    }

    #[test]
    fn write_after_read_lands_at_stream_position() {
        let l = layer("rw");
        let mut f = CFile::open(l.clone(), "/f", "w+").unwrap();
        f.write(b"abcdef").unwrap();
        f.seek(0, Whence::Set).unwrap();
        let mut two = [0u8; 2];
        f.read(&mut two).unwrap();
        f.write(b"XX").unwrap();
        f.close().unwrap();
        let mut f = CFile::open(l, "/f", "r").unwrap();
        let mut buf = [0u8; 6];
        f.read(&mut buf).unwrap();
        assert_eq!(&buf, b"abXXef");
    }

    #[test]
    fn drop_flushes() {
        let l = layer("drop");
        {
            let mut f = CFile::open(l.clone(), "/f", "w").unwrap();
            f.write(b"pending").unwrap();
        }
        assert_eq!(l.stat("/f").unwrap().size, 7);
    }
}
