//! # bench — the figure/table regeneration harness
//!
//! Library behind the `paperbench` binary: one function per table/figure of
//! the paper, each returning structured data that the binary renders as
//! aligned text tables (and optionally JSON for EXPERIMENTS.md).
//!
//! Every experiment can run at `Scale::Paper` (the exact sweep of the
//! paper) or `Scale::Quick` (same shapes, smaller volumes — used by CI and
//! the criterion benches).

#![warn(missing_docs)]

use apps::flash_io::{self, FlashConfig};
use apps::mpi_io_test::{self, MpiIoTestConfig, Phase};
use apps::nas_bt::{self, BtClass, BtConfig};
use apps::unix_tools::sim::{tool_time, FileKind, Tool};
use jsonlite::{ToJson, Value};
use mpiio::{FileView, Job, Method, MpiFile, MpiInfo};
use rayon::prelude::*;
use simfs::{presets, Platform, SimFs};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's exact volumes and sweeps.
    Paper,
    /// Reduced volumes (same process sweeps) for fast iteration.
    Quick,
}

impl Scale {
    fn divide(self, bytes: u64, by: u64) -> u64 {
        match self {
            Scale::Paper => bytes,
            Scale::Quick => (bytes / by).max(1 << 20),
        }
    }
}

/// One plotted series: method label plus (x, MB/s) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, bandwidth MB/s)` points; x is nodes or cores per the figure.
    pub points: Vec<(usize, f64)>,
}

/// A whole panel (one sub-figure).
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title, e.g. "Write (1 Proc/Node)".
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
}

// ---------------------------------------------------------------------------
// Figure 3: MPI-IO Test on Minerva.
// ---------------------------------------------------------------------------

/// Node counts of Figure 3.
pub const FIG3_NODES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Processes-per-node variants of Figure 3.
pub const FIG3_PPN: [usize; 3] = [1, 2, 4];

/// Regenerate Figure 3: 6 panels (write/read × 1/2/4 ppn), 4 methods each.
pub fn fig3(scale: Scale) -> Vec<Panel> {
    let platform = presets::minerva();
    let phases = [Phase::Write, Phase::Read];
    let mut jobs = Vec::new();
    for &phase in &phases {
        for &ppn in &FIG3_PPN {
            jobs.push((phase, ppn));
        }
    }
    jobs.par_iter()
        .map(|&(phase, ppn)| {
            let series = Method::ALL
                .iter()
                .map(|&m| {
                    let points = FIG3_NODES
                        .iter()
                        .map(|&nodes| {
                            let mut cfg = MpiIoTestConfig::paper(nodes, ppn);
                            cfg.bytes_per_proc = scale.divide(cfg.bytes_per_proc, 16);
                            let b = mpi_io_test::run(&platform, &cfg, m, phase).expect("fig3 run");
                            (nodes, b.bandwidth_mbs())
                        })
                        .collect();
                    Series {
                        label: m.label().to_string(),
                        points,
                    }
                })
                .collect();
            Panel {
                title: format!(
                    "{} ({} Proc/Node)",
                    match phase {
                        Phase::Write => "Write",
                        Phase::Read => "Read",
                    },
                    ppn
                ),
                xlabel: "Nodes".to_string(),
                series,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table II: serial UNIX tools.
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Tool label.
    pub tool: String,
    /// Seconds on the PLFS container (through LDPLFS).
    pub plfs_secs: f64,
    /// Seconds on a standard flat file.
    pub standard_secs: f64,
}

/// Regenerate Table II at `size` bytes (the paper uses 4 GB) on the
/// simulated login node. The container carries 16 droppings, a typical
/// parallel-job output.
pub fn table2(size: u64) -> Vec<Table2Row> {
    let platform = presets::login_node();
    Tool::ALL
        .iter()
        .map(|&tool| {
            let plfs = tool_time(
                &platform,
                tool,
                FileKind::PlfsContainer { droppings: 16 },
                size,
            )
            .expect("table2 plfs");
            let std_ = tool_time(&platform, tool, FileKind::Standard, size).expect("table2 std");
            Table2Row {
                tool: tool.label().to_string(),
                plfs_secs: plfs,
                standard_secs: std_,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4: NAS BT on Sierra.
// ---------------------------------------------------------------------------

/// Methods shown in Figures 4 and 5 (no FUSE on Sierra — the paper could
/// not install the kernel module there, which is LDPLFS's selling point).
pub const SIERRA_METHODS: [Method; 3] = [Method::MpiIo, Method::Romio, Method::Ldplfs];

/// Regenerate one Figure 4 panel (class C or D).
pub fn fig4(class: BtClass, scale: Scale) -> Panel {
    let platform = presets::sierra();
    let series: Vec<Series> = SIERRA_METHODS
        .par_iter()
        .map(|&m| {
            let points = class
                .core_sweep()
                .iter()
                .map(|&cores| {
                    let cfg = BtConfig::paper(class, cores);
                    let _ = scale; // BT volumes are fixed by problem class
                    let b = nas_bt::run(&platform, &cfg, m).expect("fig4 run");
                    (cores, b.bandwidth_mbs())
                })
                .collect();
            Series {
                label: m.label().to_string(),
                points,
            }
        })
        .collect();
    Panel {
        title: format!("BT Problem Class {}", class.label()),
        xlabel: "Cores".to_string(),
        series,
    }
}

// ---------------------------------------------------------------------------
// Figure 5: FLASH-IO on Sierra.
// ---------------------------------------------------------------------------

/// Regenerate Figure 5, optionally overriding the PLFS hostdir count (the
/// paper's future-work knob for taming the MDS storm).
pub fn fig5_with(num_hostdirs: u32, scale: Scale) -> Panel {
    let platform = presets::sierra();
    let series: Vec<Series> = SIERRA_METHODS
        .par_iter()
        .map(|&m| {
            let points = FlashConfig::core_sweep()
                .iter()
                .map(|&cores| {
                    let mut cfg = FlashConfig::paper(cores);
                    cfg.num_hostdirs = num_hostdirs;
                    let _ = scale;
                    let b = flash_io::run(&platform, &cfg, m).expect("fig5 run");
                    (cores, b.bandwidth_mbs())
                })
                .collect();
            Series {
                label: m.label().to_string(),
                points,
            }
        })
        .collect();
    Panel {
        title: "FLASH-IO (weak scaled, 24³ blocks)".to_string(),
        xlabel: "Cores".to_string(),
        series,
    }
}

/// Figure 5 with the paper's default 32 hostdirs.
pub fn fig5(scale: Scale) -> Panel {
    fig5_with(32, scale)
}

// ---------------------------------------------------------------------------
// Beyond the paper: the crossover finder it proposes as future work.
// ---------------------------------------------------------------------------

/// Result of the PLFS-benefit crossover search on a platform.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// Platform name.
    pub platform: String,
    /// Core counts examined.
    pub cores: Vec<usize>,
    /// LDPLFS-over-MPI-IO speedup at each core count.
    pub speedup: Vec<f64>,
    /// First core count where PLFS hurts (speedup < 1), if any.
    pub harmful_at: Option<usize>,
}

/// Sweep FLASH-IO on a platform and report where PLFS stops helping — the
/// performance-model use the paper's §V.A proposes ("highlight systems
/// where PLFS may have a negative effect").
pub fn crossover(platform: &Platform, label: &str) -> Crossover {
    let cores: Vec<usize> = FlashConfig::core_sweep()
        .iter()
        .copied()
        .filter(|&c| c <= platform.cluster.nodes * platform.cluster.cores_per_node)
        .collect();
    let speedup: Vec<f64> = cores
        .par_iter()
        .map(|&c| {
            let cfg = FlashConfig::paper(c);
            let base = flash_io::run(platform, &cfg, Method::MpiIo).expect("crossover base");
            let plfs = flash_io::run(platform, &cfg, Method::Ldplfs).expect("crossover plfs");
            plfs.bandwidth_mbs() / base.bandwidth_mbs()
        })
        .collect();
    let harmful_at = cores
        .iter()
        .zip(&speedup)
        .find(|(_, &s)| s < 1.0)
        .map(|(&c, _)| c);
    Crossover {
        platform: label.to_string(),
        cores,
        speedup,
        harmful_at,
    }
}

// ---------------------------------------------------------------------------
// Beyond the paper: Zest-style staging tier (related work, §II).
// ---------------------------------------------------------------------------

/// One row of the staging comparison.
#[derive(Debug, Clone)]
pub struct StagingRow {
    /// Core count.
    pub cores: usize,
    /// Plain MPI-IO on Lustre (MB/s).
    pub lustre_mpiio: f64,
    /// LDPLFS/PLFS on Lustre (MB/s).
    pub lustre_plfs: f64,
    /// MPI-IO over the Zest-style staging tier (MB/s, as the *application*
    /// observes — durability drains later, like Zest's delayed copy-out).
    pub staging: f64,
}

/// Compare FLASH-IO on plain Lustre, PLFS, and a Zest-style staging tier
/// (the related-work design the paper contrasts PLFS against: log-writes
/// to a no-read-back staging area, drained at non-critical times).
pub fn staging_comparison() -> Vec<StagingRow> {
    let lustre = presets::sierra();
    let zest = presets::zest_staging();
    FlashConfig::core_sweep()
        .iter()
        .take(7) // up to 768 cores keeps this quick
        .map(|&cores| {
            let cfg = FlashConfig::paper(cores);
            let lustre_mpiio = flash_io::run(&lustre, &cfg, Method::MpiIo)
                .expect("staging base")
                .bandwidth_mbs();
            let lustre_plfs = flash_io::run(&lustre, &cfg, Method::Ldplfs)
                .expect("staging plfs")
                .bandwidth_mbs();
            let staging = flash_io::run(&zest, &cfg, Method::MpiIo)
                .expect("staging zest")
                .bandwidth_mbs();
            StagingRow {
                cores,
                lustre_mpiio,
                lustre_plfs,
                staging,
            }
        })
        .collect()
}

/// Render the staging comparison.
pub fn render_staging(rows: &[StagingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}{:>14}{:>14}{:>16}
",
        "Cores", "Lustre MPI-IO", "Lustre PLFS", "Zest staging"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>14.1}{:>14.1}{:>16.1}
",
            r.cores, r.lustre_mpiio, r.lustre_plfs, r.staging
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Beyond the paper: IOR parameter sweep.
// ---------------------------------------------------------------------------

/// One row of the IOR exploration table.
#[derive(Debug, Clone)]
pub struct IorRow {
    /// Layout label.
    pub layout: String,
    /// API label.
    pub api: String,
    /// Transfer size (bytes).
    pub transfer: u64,
    /// Plain POSIX bandwidth (MB/s).
    pub mpiio: f64,
    /// LDPLFS bandwidth (MB/s).
    pub ldplfs: f64,
}

/// Sweep IOR layouts/APIs/transfer-sizes on Sierra, comparing plain MPI-IO
/// with LDPLFS — the generalisation of the paper's fixed workloads.
pub fn ior_sweep(procs: usize) -> Vec<IorRow> {
    use apps::ior::{run_write, ApiMode, FileLayout, IorConfig};
    let platform = presets::sierra();
    let mut rows = Vec::new();
    let layouts = [
        ("shared-segmented", FileLayout::SharedSegmented),
        ("shared-strided", FileLayout::SharedStrided),
        ("file-per-process", FileLayout::FilePerProcess),
    ];
    let apis = [
        ("independent", ApiMode::Independent),
        ("collective", ApiMode::Collective),
    ];
    for &(lname, layout) in &layouts {
        for &(aname, api) in &apis {
            if layout == FileLayout::FilePerProcess && api == ApiMode::Collective {
                continue; // no collective over per-process files
            }
            for transfer in [64 << 10u64, 1 << 20, 8 << 20] {
                let cfg = IorConfig {
                    procs,
                    ppn: 12,
                    transfer,
                    transfers_per_block: 8,
                    layout,
                    api,
                    num_hostdirs: 32,
                };
                let mpiio = run_write(&platform, &cfg, Method::MpiIo)
                    .expect("ior mpiio")
                    .bandwidth_mbs();
                let ldplfs = run_write(&platform, &cfg, Method::Ldplfs)
                    .expect("ior ldplfs")
                    .bandwidth_mbs();
                rows.push(IorRow {
                    layout: lname.to_string(),
                    api: aname.to_string(),
                    transfer,
                    mpiio,
                    ldplfs,
                });
            }
        }
    }
    rows
}

/// Render the IOR sweep.
pub fn render_ior(rows: &[IorRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18}{:<13}{:>10}{:>12}{:>12}{:>10}
",
        "layout", "api", "transfer", "MPI-IO", "LDPLFS", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18}{:<13}{:>10}{:>12.1}{:>12.1}{:>9.2}x
",
            r.layout,
            r.api,
            r.transfer,
            r.mpiio,
            r.ldplfs,
            r.ldplfs / r.mpiio
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Beyond the paper: the parallel read path (concurrent index merge +
// sharded handle cache + pread fan-out).
// ---------------------------------------------------------------------------

/// One measured row of the read-path comparison: a strided container with
/// `droppings` writer streams, opened and read serially vs in parallel.
#[derive(Debug, Clone)]
pub struct ReadPathRow {
    /// Index/data dropping pairs in the container (= writer processes).
    pub droppings: usize,
    /// Total index entries merged at open.
    pub entries: usize,
    /// First-byte latency, serial open (ms): sequential dropping reads,
    /// insert-based merge.
    pub serial_open_ms: f64,
    /// First-byte latency, parallel open (ms): concurrent dropping reads,
    /// k-way run merge + bulk build.
    pub parallel_open_ms: f64,
    /// 4 MiB pread bandwidth through the serial slice loop (MB/s).
    pub serial_read_mbs: f64,
    /// Same pread through the threshold-gated fan-out (MB/s).
    pub fanout_read_mbs: f64,
}

impl ReadPathRow {
    /// Serial-over-parallel open speedup.
    pub fn open_speedup(&self) -> f64 {
        self.serial_open_ms / self.parallel_open_ms.max(1e-9)
    }
}

/// One projected row: the simfs model's estimate of the same comparison at
/// paper scale, where dropping fetches cost real metadata round-trips.
#[derive(Debug, Clone)]
pub struct ReadPathProjection {
    /// Platform label.
    pub platform: String,
    /// Dropping count.
    pub droppings: usize,
    /// Modelled serial open (s).
    pub serial_open_secs: f64,
    /// Modelled parallel open (s).
    pub parallel_open_secs: f64,
}

/// Dropping counts swept by the measured comparison.
pub const READPATH_DROPPINGS: [usize; 3] = [16, 64, 256];

fn best_of<F: FnMut() -> u64>(times: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut out = 0;
    for _ in 0..times {
        let t0 = std::time::Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Measure serial vs parallel open/read on in-memory containers across
/// [`READPATH_DROPPINGS`]. Runs through the public `plfs::Plfs` API so the
/// `index_merge`/`index_merge_par`/`read_fanout` trace ops land in the
/// emitted BENCH json.
pub fn readpath_comparison(scale: Scale) -> Vec<ReadPathRow> {
    use plfs::{MemBacking, OpenFlags, Plfs, ReadConf};
    use std::sync::Arc;

    let rows_per_writer = match scale {
        Scale::Paper => 256usize,
        Scale::Quick => 64,
    };
    let block = 512usize;
    READPATH_DROPPINGS
        .iter()
        .map(|&droppings| {
            let backing = Arc::new(MemBacking::new());
            let writer = Plfs::new(backing.clone());
            let fd = writer
                .open("/c", OpenFlags::RDWR | OpenFlags::CREAT, 0)
                .unwrap();
            for p in 0..droppings as u64 {
                fd.add_ref(p);
                let data = vec![p as u8; block];
                for r in 0..rows_per_writer as u64 {
                    writer
                        .write(&fd, &data, (r * droppings as u64 + p) * block as u64, p)
                        .unwrap();
                }
            }
            for p in 0..droppings as u64 {
                let _ = writer.close(&fd, p);
            }
            writer.close(&fd, 0).unwrap();

            let par_conf = ReadConf {
                threads: 4,
                parallel_merge_min_droppings: 1,
                ..ReadConf::default()
            };
            let serial = Plfs::new(backing.clone()).with_read_conf(ReadConf::serial());
            let parallel = Plfs::new(backing.clone()).with_read_conf(par_conf);

            // First-byte latency: open + 1-byte read forces the index build.
            let mut one = [0u8; 1];
            let (serial_open, _) = best_of(3, || {
                let fd = serial.open("/c", OpenFlags::RDONLY, 0).unwrap();
                serial.read(&fd, &mut one, 0).unwrap() as u64
            });
            let (parallel_open, _) = best_of(3, || {
                let fd = parallel.open("/c", OpenFlags::RDONLY, 0).unwrap();
                parallel.read(&fd, &mut one, 0).unwrap() as u64
            });

            // Steady-state large reads on warm fds.
            let read = (1 << 22).min(droppings * rows_per_writer * block);
            let mut buf = vec![0u8; read];
            let sfd = serial.open("/c", OpenFlags::RDONLY, 0).unwrap();
            let (serial_read, n) = best_of(3, || serial.read(&sfd, &mut buf, 0).unwrap() as u64);
            assert_eq!(n as usize, read);
            let pfd = parallel.open("/c", OpenFlags::RDONLY, 0).unwrap();
            let (fanout_read, n) = best_of(3, || parallel.read(&pfd, &mut buf, 0).unwrap() as u64);
            assert_eq!(n as usize, read);

            ReadPathRow {
                droppings,
                entries: droppings * rows_per_writer,
                serial_open_ms: serial_open * 1e3,
                parallel_open_ms: parallel_open * 1e3,
                serial_read_mbs: read as f64 / serial_read.max(1e-9) / 1e6,
                fanout_read_mbs: read as f64 / fanout_read.max(1e-9) / 1e6,
            }
        })
        .collect()
}

/// Project the open-time comparison to paper scale with the simfs model,
/// where each dropping fetch pays a platform metadata round-trip.
pub fn readpath_projection(threads: usize) -> Vec<ReadPathProjection> {
    let mut out = Vec::new();
    for (platform, label) in [
        (presets::sierra(), "Sierra (Lustre)"),
        (presets::minerva(), "Minerva (GPFS)"),
    ] {
        for &droppings in &READPATH_DROPPINGS {
            let e = simfs::readpath::open_time(&platform, droppings, 256, threads);
            out.push(ReadPathProjection {
                platform: label.to_string(),
                droppings,
                serial_open_secs: e.serial_secs,
                parallel_open_secs: e.parallel_secs,
            });
        }
    }
    out
}

/// Render the measured read-path comparison.
pub fn render_readpath(rows: &[ReadPathRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10}{:>9}{:>14}{:>14}{:>9}{:>13}{:>13}\n",
        "Droppings", "Entries", "serial open", "par open", "speedup", "serial read", "fanout read"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10}{:>9}{:>12.2}ms{:>12.2}ms{:>8.2}x{:>9.0} MB/s{:>9.0} MB/s\n",
            r.droppings,
            r.entries,
            r.serial_open_ms,
            r.parallel_open_ms,
            r.open_speedup(),
            r.serial_read_mbs,
            r.fanout_read_mbs
        ));
    }
    out
}

/// Render the simulated at-scale projection.
pub fn render_readpath_projection(rows: &[ReadPathProjection]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>10}{:>14}{:>14}{:>9}\n",
        "Platform", "Droppings", "serial open", "par open", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22}{:>10}{:>13.3}s{:>13.3}s{:>8.2}x\n",
            r.platform,
            r.droppings,
            r.serial_open_secs,
            r.parallel_open_secs,
            r.serial_open_secs / r.parallel_open_secs.max(1e-12)
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Beyond the paper: the parallel write path (per-pid writer sharding,
// atomic-EOF appends, write-behind buffering, incremental reader refresh).
// ---------------------------------------------------------------------------

/// One measured row of the write-path comparison: `writers` racing pids
/// pushing a strided checkpoint through ONE fd, serial path vs sharded +
/// write-behind-buffered path, plus the append/refresh latencies the PR 3
/// fast paths target.
#[derive(Debug, Clone)]
pub struct WritePathRow {
    /// Concurrent writer threads (= pids) sharing the fd.
    pub writers: usize,
    /// Blocks written per writer.
    pub writes_per_writer: usize,
    /// Block size (bytes).
    pub block: usize,
    /// Multi-writer throughput, serial path: one writer-table lock, no
    /// data buffering (MB/s).
    pub serial_write_mbs: f64,
    /// Same workload through id-hashed writer shards with write-behind
    /// data buffering (MB/s).
    pub sharded_write_mbs: f64,
    /// Mean `O_APPEND` write latency on the atomic-EOF fast path (ns).
    pub append_ns: f64,
    /// Interleaved append+read cycles with a full index re-merge on every
    /// post-write read (ms total).
    pub full_refresh_ms: f64,
    /// Same cycles patching the cached merged index incrementally (ms).
    pub incremental_refresh_ms: f64,
}

impl WritePathRow {
    /// Sharded-over-serial multi-writer throughput ratio.
    pub fn write_speedup(&self) -> f64 {
        self.sharded_write_mbs / self.serial_write_mbs.max(1e-9)
    }

    /// Full-re-merge-over-incremental refresh time ratio.
    pub fn refresh_speedup(&self) -> f64 {
        self.full_refresh_ms / self.incremental_refresh_ms.max(1e-9)
    }
}

/// Writer counts swept by the measured write-path comparison.
pub const WRITEPATH_WRITERS: [usize; 3] = [1, 4, 8];

/// Wall time for `writers` threads to push a strided checkpoint (and sync)
/// through one fd under `conf`.
fn multiwriter_secs(conf: plfs::WriteConf, writers: usize, rows: usize, block: usize) -> f64 {
    use plfs::{MemBacking, OpenFlags, Plfs};
    use std::sync::Arc;
    let (secs, _) = best_of(3, || {
        let plfs = Plfs::new(Arc::new(MemBacking::new())).with_write_conf(conf);
        let fd = plfs
            .open("/w", OpenFlags::RDWR | OpenFlags::CREAT, 0)
            .unwrap();
        for p in 1..writers as u64 {
            fd.add_ref(p);
        }
        std::thread::scope(|s| {
            for w in 0..writers {
                let plfs = &plfs;
                let fd = fd.clone();
                s.spawn(move || {
                    let pid = w as u64;
                    let data = vec![w as u8; block];
                    for r in 0..rows {
                        let off = ((r * writers + w) * block) as u64;
                        plfs.write(&fd, &data, off, pid).unwrap();
                    }
                    plfs.sync(&fd, pid).unwrap();
                });
            }
        });
        (writers * rows * block) as u64
    });
    secs
}

/// Measure the write path across [`WRITEPATH_WRITERS`]. Runs through the
/// public `plfs::Plfs` API so the `append_fastpath`/`data_buffer_flush`/
/// `index_patch` trace ops land in the emitted BENCH json.
pub fn writepath_comparison(scale: Scale) -> Vec<WritePathRow> {
    use plfs::{MemBacking, OpenFlags, Plfs, WriteConf};
    use std::sync::Arc;

    let (rows, block, appends, cycles) = match scale {
        Scale::Paper => (512usize, 4096usize, 4096usize, 64usize),
        Scale::Quick => (96, 512, 512, 16),
    };
    let sharded = WriteConf::default().with_data_buffer_bytes(64 << 10);
    WRITEPATH_WRITERS
        .iter()
        .map(|&writers| {
            let serial_secs = multiwriter_secs(WriteConf::serial(), writers, rows, block);
            let sharded_secs = multiwriter_secs(sharded, writers, rows, block);
            let volume = (writers * rows * block) as f64;

            // O_APPEND latency on the atomic-EOF fast path.
            let chunk = vec![7u8; 64];
            let (append_secs, _) = best_of(3, || {
                let plfs = Plfs::new(Arc::new(MemBacking::new())).with_write_conf(sharded);
                let fd = plfs
                    .open("/a", OpenFlags::RDWR | OpenFlags::CREAT, 0)
                    .unwrap();
                for _ in 0..appends {
                    fd.append(&chunk, 0).unwrap();
                }
                plfs.close(&fd, 0).unwrap();
                appends as u64
            });

            // Interleaved append+read cycles: every read refreshes the
            // cached reader — by a full re-merge or an incremental patch.
            let refresh_secs = |incremental: bool| {
                let conf = WriteConf::default().with_incremental_refresh(incremental);
                let (secs, _) = best_of(3, || {
                    let plfs = Plfs::new(Arc::new(MemBacking::new())).with_write_conf(conf);
                    let fd = plfs
                        .open("/r", OpenFlags::RDWR | OpenFlags::CREAT, 0)
                        .unwrap();
                    for p in 1..writers as u64 {
                        fd.add_ref(p);
                    }
                    let mut one = [0u8; 1];
                    for c in 0..cycles {
                        for p in 0..writers as u64 {
                            fd.append(&chunk, p).unwrap();
                        }
                        plfs.read(&fd, &mut one, (c * chunk.len()) as u64).unwrap();
                    }
                    cycles as u64
                });
                secs
            };
            let full = refresh_secs(false);
            let incr = refresh_secs(true);

            WritePathRow {
                writers,
                writes_per_writer: rows,
                block,
                serial_write_mbs: volume / serial_secs.max(1e-9) / 1e6,
                sharded_write_mbs: volume / sharded_secs.max(1e-9) / 1e6,
                append_ns: append_secs * 1e9 / appends as f64,
                full_refresh_ms: full * 1e3,
                incremental_refresh_ms: incr * 1e3,
            }
        })
        .collect()
}

/// Render the measured write-path comparison.
pub fn render_writepath(rows: &[WritePathRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}{:>13}{:>13}{:>9}{:>11}{:>13}{:>13}{:>9}\n",
        "Writers", "serial", "sharded", "speedup", "append", "full refr", "incr refr", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>8.0} MB/s{:>8.0} MB/s{:>8.2}x{:>9.0}ns{:>11.2}ms{:>11.2}ms{:>8.2}x\n",
            r.writers,
            r.serial_write_mbs,
            r.sharded_write_mbs,
            r.write_speedup(),
            r.append_ns,
            r.full_refresh_ms,
            r.incremental_refresh_ms,
            r.refresh_speedup()
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Metadata fast path: measured ops-per-open + MDS create-storm projection.
// ---------------------------------------------------------------------------

/// One measured phase of the metadata comparison: backing metadata ops and
/// wall latency, eager/uncached path vs the cached fast path (steady
/// state, in-memory backing).
#[derive(Debug, Clone)]
pub struct MetadataRow {
    /// Phase label: `reopen`, `getattr`, or `open+write+close`.
    pub phase: String,
    /// Backing metadata ops with `MetaConf::serial()` (the pre-fast-path
    /// behaviour: cache off, eager markers).
    pub eager_ops: u64,
    /// Backing metadata ops with the cache on and lazy markers.
    pub cached_ops: u64,
    /// Mean wall latency, eager path (µs).
    pub eager_us: f64,
    /// Mean wall latency, cached path (µs).
    pub cached_us: f64,
}

impl MetadataRow {
    /// Backing-metadata-op reduction factor (eager over cached; zero cached
    /// ops count as one so the ratio stays finite).
    pub fn ops_reduction(&self) -> f64 {
        self.eager_ops as f64 / self.cached_ops.max(1) as f64
    }
}

/// One projected row: N processes simultaneously running the measured
/// open+write+close profile against the Sierra dedicated-MDS model.
#[derive(Debug, Clone)]
pub struct MetadataStormRow {
    /// Processes opening at once.
    pub procs: u64,
    /// Metadata ops per open, eager profile.
    pub eager_ops_per_open: u64,
    /// Metadata ops per open, cached profile.
    pub cached_ops_per_open: u64,
    /// Projected time for the storm to drain, eager profile (s).
    pub eager_secs: f64,
    /// Projected time for the storm to drain, cached profile (s).
    pub cached_secs: f64,
}

impl MetadataStormRow {
    /// Eager-over-cached time-to-open ratio.
    pub fn speedup(&self) -> f64 {
        self.eager_secs / self.cached_secs.max(1e-12)
    }
}

/// Everything `paperbench metadata` reports.
#[derive(Debug, Clone)]
pub struct MetadataReport {
    /// Measured per-phase op counts and latencies.
    pub measured: Vec<MetadataRow>,
    /// Projected create storms across [`METADATA_STORM_PROCS`].
    pub storm: Vec<MetadataStormRow>,
    /// Metadata-cache hits over the cached measurement run.
    pub cache_hits: u64,
    /// Metadata-cache misses over the cached measurement run.
    pub cache_misses: u64,
}

impl MetadataReport {
    /// Cache hit rate over the cached measurement run.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / (self.cache_hits + self.cache_misses).max(1) as f64
    }
}

/// Process counts for the projected create storm — Figure 5 territory:
/// Sierra absorbs hundreds of clients and collapses past a few thousand.
pub const METADATA_STORM_PROCS: [u64; 4] = [256, 1024, 4096, 8192];

/// Fresh metered mount with the given metadata configuration.
fn metered(conf: plfs::MetaConf) -> (std::sync::Arc<plfs::MeterBacking>, plfs::Plfs) {
    use std::sync::Arc;
    let meter = Arc::new(plfs::MeterBacking::new(Arc::new(plfs::MemBacking::new())));
    let p = plfs::Plfs::new(meter.clone() as Arc<dyn plfs::Backing>).with_meta_conf(conf);
    (meter, p)
}

/// Map a metered op delta onto the simulator's per-open MDS profile.
fn storm_profile(d: &plfs::MeterSnapshot) -> simfs::OpenProfile {
    simfs::OpenProfile {
        creates: d.create + d.mkdir + d.mkdir_all,
        opens: d.open,
        stats: d.stat + d.exists + d.size + d.sync + d.truncate,
        removes: d.unlink + d.rmdir + d.rename,
        readdirs: d.readdir,
    }
}

/// Writer ranks sharing one process's fd in the checkpoint cycle — the
/// shape the LDPLFS shim presents: one fd per process, every rank/thread of
/// the process writing through it with its own pid.
const META_CYCLE_RANKS: u64 = 4;

/// One process's checkpoint cycle: open the shared container for write,
/// every rank appends its block, every rank closes. `base_pid` must be
/// fresh per cycle — reusing a pid makes the writer's exclusive-create
/// dropping probe walk every dropping that pid ever left (which is the
/// realistic shape: storm processes are distinct).
fn meta_cycle(p: &plfs::Plfs, base_pid: u64) {
    use plfs::OpenFlags;
    let fd = p
        .open("/storm", OpenFlags::RDWR | OpenFlags::CREAT, base_pid)
        .unwrap();
    for r in 1..META_CYCLE_RANKS {
        fd.add_ref(base_pid + r);
    }
    for r in 0..META_CYCLE_RANKS {
        p.write(&fd, &[7u8; 512], 8192 + r * 512, base_pid + r)
            .unwrap();
    }
    for r in 0..META_CYCLE_RANKS {
        p.close(&fd, base_pid + r).unwrap();
    }
}

/// Per-conf measurement: `(ops, µs)` for each phase plus the storm profile
/// and cache counters.
struct MetaSide {
    reopen: (u64, f64),
    getattr: (u64, f64),
    cycle: (u64, f64),
    cycle_profile: simfs::OpenProfile,
    hits: u64,
    misses: u64,
}

fn measure_meta_side(conf: plfs::MetaConf, iters: usize) -> MetaSide {
    use plfs::OpenFlags;
    let flags = OpenFlags::RDWR | OpenFlags::CREAT;
    let (meter, p) = metered(conf);
    // Warm up: create the container, write, close, and stat it once — the
    // comparison is steady-state cost, not cold-cache cost.
    let fd = p.open("/storm", flags, 0).unwrap();
    p.write(&fd, &[7u8; 4096], 0, 0).unwrap();
    p.close(&fd, 0).unwrap();
    let _ = p.getattr("/storm").unwrap();

    // Backing metadata ops per phase (single steady-state delta).
    let before = meter.snapshot();
    let fd = p.open("/storm", OpenFlags::RDONLY, 1).unwrap();
    p.close(&fd, 1).unwrap();
    let reopen_ops = meter.snapshot().delta(&before).metadata_ops();

    let before = meter.snapshot();
    let _ = p.getattr("/storm").unwrap();
    let getattr_ops = meter.snapshot().delta(&before).metadata_ops();

    let before = meter.snapshot();
    meta_cycle(&p, 2);
    let cycle_delta = meter.snapshot().delta(&before);
    let cycle_ops = cycle_delta.metadata_ops();
    let cycle_profile = storm_profile(&cycle_delta);

    // Wall latencies over `iters` iterations, best of 3 rounds.
    let (secs, _) = best_of(3, || {
        for _ in 0..iters {
            let fd = p.open("/storm", OpenFlags::RDONLY, 3).unwrap();
            p.close(&fd, 3).unwrap();
        }
        iters as u64
    });
    let reopen_us = secs * 1e6 / iters as f64;
    let (secs, _) = best_of(3, || {
        for _ in 0..iters {
            p.getattr("/storm").unwrap();
        }
        iters as u64
    });
    let getattr_us = secs * 1e6 / iters as f64;
    let mut next_pid = 100u64;
    let (secs, _) = best_of(3, || {
        for _ in 0..iters {
            meta_cycle(&p, next_pid);
            next_pid += META_CYCLE_RANKS;
        }
        iters as u64
    });
    let cycle_us = secs * 1e6 / iters as f64;

    let (hits, misses) = p.meta_cache_counters();
    MetaSide {
        reopen: (reopen_ops, reopen_us),
        getattr: (getattr_ops, getattr_us),
        cycle: (cycle_ops, cycle_us),
        cycle_profile,
        hits,
        misses,
    }
}

/// Measure the metadata fast path (eager vs cached, in-memory backing),
/// then project the measured open+write+close profiles as an N-process
/// create storm through the Sierra dedicated-MDS model.
pub fn metadata_comparison(scale: Scale) -> MetadataReport {
    let iters = match scale {
        Scale::Paper => 5_000,
        Scale::Quick => 500,
    };
    let eager = measure_meta_side(plfs::MetaConf::serial(), iters);
    let cached = measure_meta_side(
        plfs::MetaConf::default().with_open_markers(plfs::OpenMarkers::Lazy),
        iters,
    );
    let row = |phase: &str, e: (u64, f64), c: (u64, f64)| MetadataRow {
        phase: phase.to_string(),
        eager_ops: e.0,
        cached_ops: c.0,
        eager_us: e.1,
        cached_us: c.1,
    };
    let measured = vec![
        row("reopen", eager.reopen, cached.reopen),
        row("getattr", eager.getattr, cached.getattr),
        row("open+write+close", eager.cycle, cached.cycle),
    ];
    let mds = presets::sierra().fs.mds;
    let storm = METADATA_STORM_PROCS
        .iter()
        .map(|&n| {
            let e = simfs::create_storm(&mds, n, &eager.cycle_profile);
            let c = simfs::create_storm(&mds, n, &cached.cycle_profile);
            MetadataStormRow {
                procs: n,
                eager_ops_per_open: eager.cycle_profile.total(),
                cached_ops_per_open: cached.cycle_profile.total(),
                eager_secs: e.time_to_open,
                cached_secs: c.time_to_open,
            }
        })
        .collect();
    MetadataReport {
        measured,
        storm,
        cache_hits: cached.hits,
        cache_misses: cached.misses,
    }
}

/// Render the metadata comparison: measured phases, then the storm.
pub fn render_metadata(r: &MetadataReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>18}{:>12}{:>12}{:>11}{:>12}{:>12}\n",
        "Phase", "eager ops", "cached ops", "reduction", "eager", "cached"
    ));
    for m in &r.measured {
        out.push_str(&format!(
            "{:>18}{:>12}{:>12}{:>10.1}x{:>10.2}us{:>10.2}us\n",
            m.phase,
            m.eager_ops,
            m.cached_ops,
            m.ops_reduction(),
            m.eager_us,
            m.cached_us
        ));
    }
    out.push_str(&format!(
        "\ncache hit rate over the cached run: {:.1}% ({} hits, {} misses)\n\n",
        r.cache_hit_rate() * 100.0,
        r.cache_hits,
        r.cache_misses
    ));
    out.push_str(&format!(
        "{:>8}{:>12}{:>12}{:>13}{:>13}{:>9}\n",
        "Procs", "eager o/o", "cached o/o", "eager", "cached", "speedup"
    ));
    for s in &r.storm {
        out.push_str(&format!(
            "{:>8}{:>12}{:>12}{:>12.2}s{:>12.2}s{:>8.2}x\n",
            s.procs,
            s.eager_ops_per_open,
            s.cached_ops_per_open,
            s.eager_secs,
            s.cached_secs,
            s.speedup()
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Beyond the paper: merged-index residency (compact records + partial
// loading under an index_memory_bytes budget).
// ---------------------------------------------------------------------------

/// One row of the index-residency sweep: the same strided checkpoint shape
/// with `factor`× the writes, opened eagerly (fully-expanded `GlobalIndex`)
/// vs bounded (`CompactIndex` + windowed views under a byte budget).
#[derive(Debug, Clone)]
pub struct IndexScaleRow {
    /// Entry-count multiplier over the base container.
    pub factor: usize,
    /// Total expanded index entries in the container.
    pub entries: usize,
    /// Resident index bytes, eager open.
    pub eager_resident_bytes: usize,
    /// Resident index bytes, bounded open (records + cached views).
    pub compact_resident_bytes: usize,
    /// Cold open + 128 KiB read at offset 0, eager (ms).
    pub eager_open_read_ms: f64,
    /// Same, through the bounded index (ms).
    pub compact_open_read_ms: f64,
}

/// The sweep plus its two gated summary ratios.
#[derive(Debug, Clone)]
pub struct IndexScaleReport {
    /// One row per [`INDEXSCALE_FACTORS`] entry.
    pub rows: Vec<IndexScaleRow>,
    /// Bounded-path resident bytes at the largest factor over the smallest:
    /// ≈1 when the compact index is truly O(writers), not O(writes).
    pub memory_ratio: f64,
    /// Bounded-path cold open+read latency at the largest factor over the
    /// smallest: flat when partial loading only pays for the read's window.
    pub latency_ratio: f64,
}

/// Entry-count multipliers swept (1× to 100× the base container).
pub const INDEXSCALE_FACTORS: [usize; 3] = [1, 10, 100];

/// Budget handed to the bounded opens: small enough that the eager index
/// blows through it at every factor, large enough to hold one window view.
pub const INDEXSCALE_BUDGET_BYTES: usize = 256 << 10;

/// Measure eager vs bounded index residency and cold-read latency while the
/// entry count scales 100×. Four pattern-friendly strided writers with a
/// deep index buffer, so the on-disk index stays a handful of pattern
/// records at every factor — the eager open expands them all, the bounded
/// open only the 128 KiB the read touches. The checkpoint is sparse
/// (stride ≫ block, like a real strided dump with per-rank gaps): the
/// smallest container already spans several 4 MiB index windows, so the
/// bounded path is at its steady state at every factor and the memory
/// ratio isolates entry-count scaling from window fill.
pub fn indexscale_comparison(scale: Scale) -> IndexScaleReport {
    use plfs::{MemBacking, OpenFlags, Plfs, ReadConf, ReadFile};
    use std::sync::Arc;

    let writers = 4usize;
    let base_writes = match scale {
        Scale::Paper => 256usize,
        Scale::Quick => 64,
    };
    let block = 512usize;
    // Logical gap multiplier: each write covers `block` bytes of a
    // `block * SPARSITY` slot, so 256 writes already span 8 MiB of logical
    // space (two index windows) while staying 128 KiB of physical data.
    const SPARSITY: u64 = 64;
    let read_len = 128 << 10;

    let rows: Vec<IndexScaleRow> = INDEXSCALE_FACTORS
        .iter()
        .map(|&factor| {
            let backing = Arc::new(MemBacking::new());
            // A deep index buffer keeps each writer's flush one pattern
            // record regardless of factor.
            let writer = Plfs::new(backing.clone()).with_index_buffer(1 << 20);
            let fd = writer
                .open("/c", OpenFlags::RDWR | OpenFlags::CREAT, 0)
                .unwrap();
            let writes = base_writes * factor;
            for p in 0..writers as u64 {
                fd.add_ref(p);
                let data = vec![p as u8; block];
                for r in 0..writes as u64 {
                    writer
                        .write(
                            &fd,
                            &data,
                            (r * writers as u64 + p) * block as u64 * SPARSITY,
                            p,
                        )
                        .unwrap();
                }
            }
            for p in 0..writers as u64 {
                let _ = writer.close(&fd, p);
            }
            writer.close(&fd, 0).unwrap();

            let bounded_conf = ReadConf::default().with_index_memory_bytes(INDEXSCALE_BUDGET_BYTES);
            let mut buf = vec![0u8; read_len];
            let (eager_t, eager_resident) = best_of(3, || {
                let r = ReadFile::open(backing.as_ref(), "/c").unwrap();
                r.pread(backing.as_ref(), &mut buf, 0).unwrap();
                r.index_resident_bytes() as u64
            });
            // A bounded open+read is tens of µs — single-shot timing is
            // clock noise, and latency_ratio is a gated metric that must
            // be stable across runs. Time batches of cold opens and
            // report the per-open mean of the best batch.
            const BATCH: u64 = 32;
            let (compact_batch_t, compact_resident) = best_of(5, || {
                let mut resident = 0;
                for _ in 0..BATCH {
                    let r = ReadFile::open_with(backing.as_ref(), "/c", bounded_conf).unwrap();
                    r.pread(backing.as_ref(), &mut buf, 0).unwrap();
                    resident = r.index_resident_bytes() as u64;
                }
                resident
            });
            let compact_t = compact_batch_t / BATCH as f64;

            IndexScaleRow {
                factor,
                entries: writers * writes,
                eager_resident_bytes: eager_resident as usize,
                compact_resident_bytes: compact_resident as usize,
                eager_open_read_ms: eager_t * 1e3,
                compact_open_read_ms: compact_t * 1e3,
            }
        })
        .collect();

    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    IndexScaleReport {
        memory_ratio: last.compact_resident_bytes as f64
            / (first.compact_resident_bytes as f64).max(1.0),
        latency_ratio: last.compact_open_read_ms / first.compact_open_read_ms.max(1e-9),
        rows,
    }
}

/// Render the index-residency sweep.
pub fn render_indexscale(r: &IndexScaleReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}{:>10}{:>14}{:>14}{:>13}{:>13}\n",
        "Factor", "Entries", "eager bytes", "bounded", "eager o+r", "bounded o+r"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:>8}{:>10}{:>14}{:>14}{:>11.2}ms{:>11.2}ms\n",
            row.factor,
            row.entries,
            row.eager_resident_bytes,
            row.compact_resident_bytes,
            row.eager_open_read_ms,
            row.compact_open_read_ms
        ));
    }
    out.push_str(&format!(
        "\nbounded residency {}x entries -> {:.2}x memory, {:.2}x cold-read latency\n",
        r.rows.last().map_or(1, |row| row.factor),
        r.memory_ratio,
        r.latency_ratio
    ));
    out
}

// ---------------------------------------------------------------------------
// Beyond the paper: noncontiguous I/O — list I/O vs data sieving vs the
// per-extent lowering (romio_plfs_listio in spirit).
// ---------------------------------------------------------------------------

/// One row of the noncontiguous-I/O sweep: a block-cyclic strided
/// checkpoint (every rank writes then reads its interleaved view) run
/// three ways — data sieving on plain UFS, PLFS with the list-I/O hint
/// off (per-extent lowering), and PLFS list I/O (one batched op per
/// `write_view`/`read_view` call).
#[derive(Debug, Clone)]
pub struct NoncontigRow {
    /// MPI ranks in the job.
    pub ranks: usize,
    /// Ranks per node.
    pub ppn: usize,
    /// Block-cyclic block size (bytes).
    pub block: u64,
    /// Strided extents each `write_view`/`read_view` call lowers to.
    pub extents_per_call: usize,
    /// Simulated job completion (write + read + close), sieving on UFS.
    pub sieving_secs: f64,
    /// Same, PLFS with `list_io` off: one op per extent.
    pub per_extent_secs: f64,
    /// Same, PLFS list I/O: one batched op per call.
    pub listio_secs: f64,
    /// Bytes the storage system moved under sieving (RMW-amplified).
    pub sieving_bytes: u64,
    /// Bytes moved under list I/O (exactly the logical volume, twice —
    /// once written, once read back).
    pub listio_bytes: u64,
}

impl NoncontigRow {
    /// Sieving time over list-I/O time at this scale.
    pub fn listio_speedup(&self) -> f64 {
        self.sieving_secs / self.listio_secs.max(1e-12)
    }
}

/// The sweep plus its gated summary ratios (taken at the largest job).
#[derive(Debug, Clone)]
pub struct NoncontigReport {
    /// One row per [`NONCONTIG_JOBS`] entry.
    pub rows: Vec<NoncontigRow>,
    /// Sieving time over list-I/O time at the largest job — the paper-style
    /// headline: list I/O must beat sieving by ≥2× on strided checkpoints.
    pub listio_vs_sieving: f64,
    /// Per-extent-lowering time over list-I/O time at the largest job:
    /// what batching alone buys once sieving's RMW is already gone.
    pub listio_vs_per_extent: f64,
}

/// `(ranks, ppn)` pairs swept, smallest to largest.
pub const NONCONTIG_JOBS: [(usize, usize); 3] = [(4, 2), (8, 4), (16, 4)];

/// Run the block-cyclic checkpoint one way and report
/// `(completion secs, bytes moved, data ops)`. Everything is simulated
/// (simfs clocks), so the numbers are deterministic across runners.
fn noncontig_run(
    method: Method,
    list_io: bool,
    ranks: usize,
    ppn: usize,
    block: u64,
    calls: usize,
    len_per_call: u64,
) -> (f64, u64, u64) {
    let mut fs = SimFs::new(presets::toy());
    let mut job = Job::new(ranks, ppn);
    let info = MpiInfo {
        list_io,
        ..Default::default()
    };
    let mut f =
        MpiFile::open(&mut fs, &mut job, "/ckpt", true, method, info, 4).expect("noncontig open");
    for r in 0..ranks {
        f.set_view(r, FileView::interleaved(r, ranks, block));
    }
    for c in 0..calls as u64 {
        for r in 0..ranks {
            f.write_view(&mut fs, &mut job, r, c * len_per_call, len_per_call)
                .expect("noncontig write_view");
        }
    }
    job.barrier();
    for c in 0..calls as u64 {
        for r in 0..ranks {
            f.read_view(&mut fs, &mut job, r, c * len_per_call, len_per_call)
                .expect("noncontig read_view");
        }
    }
    let done = f.close(&mut fs, &mut job).expect("noncontig close");
    let s = fs.stats();
    (
        done,
        s.bytes_written + s.bytes_read,
        s.write_ops + s.read_ops,
    )
}

/// Sweep [`NONCONTIG_JOBS`] over the three lowering strategies. Each call
/// covers 16 block-cyclic extents (64 KiB blocks at paper scale, 16 KiB at
/// quick), well under the 512 KiB sieve buffer, so the sieving arm pays a
/// full buffer-sized read-modify-write per extent while list I/O moves the
/// logical bytes in one batched op per call.
pub fn noncontig_comparison(scale: Scale) -> NoncontigReport {
    let block = match scale {
        Scale::Paper => 64u64 << 10,
        Scale::Quick => 16 << 10,
    };
    let extents_per_call = 16usize;
    let calls = match scale {
        Scale::Paper => 4usize,
        Scale::Quick => 2,
    };
    let len_per_call = block * extents_per_call as u64;

    let rows: Vec<NoncontigRow> = NONCONTIG_JOBS
        .iter()
        .map(|&(ranks, ppn)| {
            let (sieving_secs, sieving_bytes, _) =
                noncontig_run(Method::MpiIo, true, ranks, ppn, block, calls, len_per_call);
            let (per_extent_secs, _, _) = noncontig_run(
                Method::Ldplfs,
                false,
                ranks,
                ppn,
                block,
                calls,
                len_per_call,
            );
            let (listio_secs, listio_bytes, _) =
                noncontig_run(Method::Ldplfs, true, ranks, ppn, block, calls, len_per_call);
            NoncontigRow {
                ranks,
                ppn,
                block,
                extents_per_call,
                sieving_secs,
                per_extent_secs,
                listio_secs,
                sieving_bytes,
                listio_bytes,
            }
        })
        .collect();

    let last = rows.last().unwrap();
    NoncontigReport {
        listio_vs_sieving: last.listio_speedup(),
        listio_vs_per_extent: last.per_extent_secs / last.listio_secs.max(1e-12),
        rows,
    }
}

/// Render the noncontiguous-I/O sweep.
pub fn render_noncontig(r: &NoncontigReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}{:>6}{:>10}{:>14}{:>14}{:>12}{:>10}\n",
        "Ranks", "PPN", "ext/call", "sieving", "per-extent", "list I/O", "speedup"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:>8}{:>6}{:>10}{:>12.3}s{:>12.3}s{:>10.3}s{:>9.2}x\n",
            row.ranks,
            row.ppn,
            row.extents_per_call,
            row.sieving_secs,
            row.per_extent_secs,
            row.listio_secs,
            row.listio_speedup()
        ));
    }
    out.push_str(&format!(
        "\nlist I/O vs sieving {:.2}x, vs per-extent lowering {:.2}x (largest job)\n",
        r.listio_vs_sieving, r.listio_vs_per_extent
    ));
    out
}

// ---------------------------------------------------------------------------
// staging2: tiered burst-buffer + batched submission vs direct-to-slow.
// ---------------------------------------------------------------------------

/// One rank-count row of the staging2 figure: the same N-rank, multi-phase
/// checkpoint workload run through the real container engine over two
/// backend stacks, with the job time modelled analytically from the
/// measured backing op/byte counts and the simfs tier presets.
#[derive(Debug, Clone)]
pub struct Staging2Row {
    /// Writing ranks in the job.
    pub ranks: usize,
    /// Checkpoint + compute phases.
    pub phases: usize,
    /// Checkpoint bytes written by the application (all ranks, all phases).
    pub ckpt_bytes: u64,
    /// Backing ops the direct arm issued (all of them hit the slow tier).
    pub direct_ops: u64,
    /// Ops the tiered arm sent the fast tier (foreground writes plus the
    /// destage read-back — everything the NVMe absorbs).
    pub fast_ops: u64,
    /// Ops the tiered arm sent the slow tier (background destage puts and
    /// tier-map persists only).
    pub slow_ops: u64,
    /// Sealed droppings destaged fast → slow.
    pub destages: u64,
    /// Bytes moved fast → slow in the background.
    pub destaged_bytes: u64,
    /// Deferred-op batches the submission layer drained.
    pub batch_submits: u64,
    /// Modelled job time writing straight to the slow tier.
    pub direct_secs: f64,
    /// Modelled job time on the tiered + batched stack.
    pub tiered_secs: f64,
    /// Total compute-window time (identical in both arms).
    pub compute_secs: f64,
    /// Modelled background destage time (overlaps the compute windows).
    pub destage_secs: f64,
}

impl Staging2Row {
    /// Direct-to-slow job time over tiered job time at this scale.
    pub fn overlap_speedup(&self) -> f64 {
        self.direct_secs / self.tiered_secs.max(1e-12)
    }
}

/// The staging2 sweep plus its gated headline ratio and the tier model
/// constants the times were derived from.
#[derive(Debug, Clone)]
pub struct Staging2Report {
    /// One row per swept rank count.
    pub rows: Vec<Staging2Row>,
    /// [`Staging2Row::overlap_speedup`] at the largest job — the gated
    /// headline: landing checkpoints on the fast tier and destaging during
    /// compute must beat direct-to-slow by ≥2×.
    pub destage_overlap_speedup: f64,
    /// Fast-tier streaming bandwidth (bytes/s) from [`presets::tier_fast`].
    pub fast_bw: f64,
    /// Slow-tier streaming bandwidth (bytes/s) from [`presets::tier_slow`].
    pub slow_bw: f64,
    /// Fast-tier per-op latency (seconds).
    pub fast_op_lat: f64,
    /// Slow-tier per-op latency (seconds).
    pub slow_op_lat: f64,
}

/// Rank counts swept, smallest to largest.
pub const STAGING2_RANKS: [usize; 3] = [2, 4, 8];

/// Run the N-rank strided checkpoint workload through `plfs`: per phase,
/// every rank opens the shared file, appends `writes` chunks of `chunk`
/// bytes at rank-strided offsets, and closes (sealing its dropping pair).
/// Returns the application bytes written.
fn staging2_workload(
    plfs: &plfs::Plfs,
    ranks: usize,
    phases: usize,
    writes: usize,
    chunk: u64,
) -> u64 {
    use plfs::OpenFlags;
    let phase_bytes = ranks as u64 * writes as u64 * chunk;
    let buf = vec![0xA5u8; chunk as usize];
    for phase in 0..phases as u64 {
        let base = phase * phase_bytes;
        let fds: Vec<_> = (0..ranks as u64)
            .map(|r| {
                plfs.open("/ckpt", OpenFlags::WRONLY | OpenFlags::CREAT, r)
                    .expect("staging2 open")
            })
            .collect();
        for w in 0..writes as u64 {
            for (r, fd) in fds.iter().enumerate() {
                let off = base + (w * ranks as u64 + r as u64) * chunk;
                plfs.write(fd, &buf, off, r as u64).expect("staging2 write");
            }
        }
        for (r, fd) in fds.iter().enumerate() {
            plfs.close(fd, r as u64).expect("staging2 close");
        }
    }
    phases as u64 * phase_bytes
}

/// Sweep [`STAGING2_RANKS`] (the first two at quick scale) over the direct
/// and tiered+batched stacks. Both arms run the identical workload through
/// the real engine over in-memory tiers; the op and byte counts are
/// measured with per-tier meters, then costed against the
/// [`presets::tier_fast`]/[`presets::tier_slow`] bandwidth and per-op
/// latency — so the figure is deterministic across runners.
///
/// Model: each phase's compute window equals one phase checkpoint at slow
/// streaming rate. The direct arm pays bytes and per-op latency on the
/// slow tier in the critical path; the tiered arm pays the fast tier in
/// the foreground while destage — whole sealed droppings, few large ops —
/// proceeds in the background, so only `max(compute, destage)` remains.
pub fn staging2_comparison(scale: Scale) -> Staging2Report {
    use plfs::{BackendConf, Backing, BatchedBacking, MemBacking, MeterBacking, TieredBacking};
    use std::sync::Arc;

    // Many small strided writes per rank — the N-1 checkpoint pattern the
    // paper targets — so the direct arm pays the slow tier's per-op latency
    // once per application write, while destage moves each sealed dropping
    // in a handful of large background ops.
    let (ranks_swept, phases, writes, chunk) = match scale {
        Scale::Paper => (&STAGING2_RANKS[..], 3usize, 64usize, 32u64 << 10),
        Scale::Quick => (&STAGING2_RANKS[..2], 2, 48, 16 << 10),
    };
    let fast_p = presets::tier_fast();
    let slow_p = presets::tier_slow();
    let fast_bw = fast_p.peak_storage_bw();
    let slow_bw = slow_p.peak_storage_bw();
    let fast_op_lat = fast_p.fs.per_op_latency;
    let slow_op_lat = slow_p.fs.per_op_latency;

    let conf = BackendConf::default()
        .with_submit_depth(32)
        .with_submit_workers(2);

    let rows: Vec<Staging2Row> = ranks_swept
        .iter()
        .map(|&ranks| {
            // Direct arm: every backing op lands on the slow tier.
            let direct_m = Arc::new(MeterBacking::new(Arc::new(MemBacking::new())));
            let direct = plfs::Plfs::new(Arc::clone(&direct_m) as Arc<dyn Backing>);
            let ckpt_bytes = staging2_workload(&direct, ranks, phases, writes, chunk);
            let d = direct_m.snapshot();
            let direct_ops = d.data_ops() + d.metadata_ops();

            // Tiered arm: batched submission over a metered tier pair.
            let (tiered, fast_m, slow_m) = TieredBacking::new_metered(
                Arc::new(MemBacking::new()),
                Arc::new(MemBacking::new()),
                conf,
            );
            let tiered = Arc::new(tiered);
            let batched = Arc::new(BatchedBacking::new(
                Arc::clone(&tiered) as Arc<dyn Backing>,
                conf,
            ));
            let plfs_t = plfs::Plfs::new(Arc::clone(&batched) as Arc<dyn Backing>);
            let bytes2 = staging2_workload(&plfs_t, ranks, phases, writes, chunk);
            assert_eq!(bytes2, ckpt_bytes, "arms must run the same workload");
            batched.drain().expect("batched drain");
            tiered.drain();
            let stats = tiered.tier_stats();
            // A silent destage break must fail figure generation, not
            // produce a flattering row: every checkpoint byte (plus index
            // droppings) must have moved to the slow tier, cleanly.
            assert!(
                stats.destaged_bytes >= ckpt_bytes,
                "destage moved {} of {} checkpoint bytes",
                stats.destaged_bytes,
                ckpt_bytes
            );
            assert_eq!(stats.destage_errors, 0, "destage errors");
            let f = fast_m.snapshot();
            let s = slow_m.snapshot();
            let fast_ops = f.data_ops() + f.metadata_ops();
            let slow_ops = s.data_ops() + s.metadata_ops();

            // Cost the measured counts against the tier presets.
            let compute_secs = ckpt_bytes as f64 / slow_bw;
            let direct_secs =
                ckpt_bytes as f64 / slow_bw + direct_ops as f64 * slow_op_lat + compute_secs;
            let fast_bytes = ckpt_bytes + stats.destaged_bytes; // written, then read back out
            let foreground = fast_bytes as f64 / fast_bw + fast_ops as f64 * fast_op_lat;
            let destage_secs =
                stats.destaged_bytes as f64 / slow_bw + slow_ops as f64 * slow_op_lat;
            let tiered_secs = foreground + compute_secs.max(destage_secs);

            Staging2Row {
                ranks,
                phases,
                ckpt_bytes,
                direct_ops,
                fast_ops,
                slow_ops,
                destages: stats.destages,
                destaged_bytes: stats.destaged_bytes,
                batch_submits: batched.batches(),
                direct_secs,
                tiered_secs,
                compute_secs,
                destage_secs,
            }
        })
        .collect();

    let last = rows.last().unwrap();
    Staging2Report {
        destage_overlap_speedup: last.overlap_speedup(),
        rows,
        fast_bw,
        slow_bw,
        fast_op_lat,
        slow_op_lat,
    }
}

/// Render the staging2 sweep.
pub fn render_staging2(r: &Staging2Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}{:>10}{:>12}{:>12}{:>11}{:>11}{:>11}{:>9}\n",
        "Ranks", "MiB", "direct ops", "slow ops", "direct", "tiered", "destage", "speedup"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:>6}{:>10.1}{:>12}{:>12}{:>10.3}s{:>10.3}s{:>10.3}s{:>8.2}x\n",
            row.ranks,
            row.ckpt_bytes as f64 / (1 << 20) as f64,
            row.direct_ops,
            row.slow_ops,
            row.direct_secs,
            row.tiered_secs,
            row.destage_secs,
            row.overlap_speedup()
        ));
    }
    out.push_str(&format!(
        "\ndestage overlap speedup {:.2}x (largest job; fast {:.1} GB/s / {:.0} us, slow {:.0} MB/s / {:.1} ms)\n",
        r.destage_overlap_speedup,
        r.fast_bw / 1e9,
        r.fast_op_lat * 1e6,
        r.slow_bw / 1e6,
        r.slow_op_lat * 1e3,
    ));
    out
}

// ---------------------------------------------------------------------------
// readcache: data block cache + adaptive readahead vs direct reads.
// ---------------------------------------------------------------------------

/// One read-size row of the readcache figure: a sequential whole-file scan
/// in `read_bytes` calls, run through the real engine four ways — direct
/// (cache disabled), cached without readahead, cached with readahead
/// (cold), and the warm re-read — with backing preads measured per arm and
/// times modelled from the measured counts and the slow-tier preset.
#[derive(Debug, Clone)]
pub struct ReadCacheRow {
    /// Bytes per application read call.
    pub read_bytes: u64,
    /// Logical file size scanned (a multiple of the cache block size, so
    /// each byte crosses the device exactly once on any cold scan).
    pub file_bytes: u64,
    /// Backing preads with the cache disabled: one device op per call.
    pub uncached_preads: u64,
    /// Backing preads with the cache on but readahead off: one per block.
    pub nora_preads: u64,
    /// Backing preads with cache + readahead: coalesced prefetch runs.
    pub ra_preads: u64,
    /// Backing preads on the warm re-read (must be zero: every block is
    /// resident).
    pub warm_preads: u64,
    /// Readahead windows issued during the cold cached scan.
    pub readaheads: u64,
    /// Modelled scan time with the cache disabled.
    pub uncached_secs: f64,
    /// Modelled scan time, cached, readahead off.
    pub nora_secs: f64,
    /// Modelled cold scan time, cached, readahead on.
    pub cold_secs: f64,
    /// Modelled warm re-read time (memory bandwidth only).
    pub warm_secs: f64,
}

impl ReadCacheRow {
    /// Cold cached scan over the warm re-read.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-12)
    }

    /// Cache-without-readahead over cache-with-readahead: what prefetch
    /// coalescing alone buys on top of block caching.
    pub fn readahead_speedup(&self) -> f64 {
        self.nora_secs / self.cold_secs.max(1e-12)
    }

    /// Uncached scan over the cold cached scan: the whole-stack win.
    pub fn cache_speedup(&self) -> f64 {
        self.uncached_secs / self.cold_secs.max(1e-12)
    }
}

/// The readcache sweep plus its two gated headline ratios and the device
/// model constants the times were derived from.
#[derive(Debug, Clone)]
pub struct ReadCacheReport {
    /// One row per swept read size.
    pub rows: Vec<ReadCacheRow>,
    /// [`ReadCacheRow::warm_speedup`] at the smallest read size — gated:
    /// a warm re-read must beat the cold scan by ≥3×.
    pub warm_vs_cold: f64,
    /// [`ReadCacheRow::readahead_speedup`] at the smallest read size —
    /// gated: readahead coalescing must beat unprefetched caching by ≥2×.
    pub readahead_speedup: f64,
    /// Cache block size used by the cached arms (bytes).
    pub block_bytes: u64,
    /// Device streaming bandwidth (bytes/s) from [`presets::tier_slow`].
    pub dev_bw: f64,
    /// Device per-op latency (seconds) from [`presets::tier_slow`].
    pub dev_op_lat: f64,
    /// Client memory bandwidth (bytes/s) — what a cache hit pays.
    pub mem_bw: f64,
}

/// Read sizes swept by the readcache figure, smallest first (the smallest
/// is the gated headline row — small reads are where per-op latency
/// dominates and the cache matters most).
pub const READCACHE_READS: [usize; 3] = [4 << 10, 16 << 10, 64 << 10];

/// Write the `/scan` container once: one writer appending sequential
/// `chunk`-byte records, so the data dropping is physically contiguous and
/// prefetch runs can coalesce.
fn readcache_file(base: &std::sync::Arc<plfs::MemBacking>, bytes: u64, chunk: usize) {
    use plfs::OpenFlags;
    use std::sync::Arc;
    let plfs = plfs::Plfs::new(Arc::clone(base) as Arc<dyn plfs::Backing>);
    let fd = plfs
        .open("/scan", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
        .expect("readcache create");
    let buf: Vec<u8> = (0..chunk).map(|i| (i % 251) as u8).collect();
    let mut off = 0u64;
    while off < bytes {
        plfs.write(&fd, &buf, off, 0).expect("readcache write");
        off += chunk as u64;
    }
    plfs.close(&fd, 0).expect("readcache close-write");
}

/// One measured arm: open `/scan` read-only through a fresh meter with the
/// given cache configuration, warm the index merge with a 1-byte probe,
/// drop the block the probe populated so the measured pass starts truly
/// cold, then scan the whole file twice in `read`-byte calls. Returns the
/// backing preads of the cold pass, of the warm pass, and the readahead
/// windows issued during the cold pass.
fn readcache_arm(
    base: &std::sync::Arc<plfs::MemBacking>,
    conf: plfs::CacheConf,
    read: usize,
    file_bytes: u64,
) -> (u64, u64, u64) {
    use plfs::{Backing, MeterBacking, OpenFlags};
    use std::sync::Arc;
    let meter = Arc::new(MeterBacking::new(Arc::clone(base) as Arc<dyn Backing>));
    let plfs = plfs::Plfs::new(Arc::clone(&meter) as Arc<dyn Backing>).with_cache_conf(conf);
    let fd = plfs
        .open("/scan", OpenFlags::RDONLY, 0)
        .expect("readcache open");
    let mut probe = [0u8; 1];
    plfs.read(&fd, &mut probe, 0).expect("readcache probe");
    if let Some(c) = fd.block_cache() {
        c.clear();
    }
    let scan = |label: &str| -> u64 {
        let before = meter.snapshot();
        let mut buf = vec![0u8; read];
        let mut off = 0u64;
        while off < file_bytes {
            let n = plfs.read(&fd, &mut buf, off).expect(label);
            assert!(n > 0, "short read at {off} during {label} scan");
            off += n as u64;
        }
        meter.snapshot().delta(&before).pread
    };
    let ra_before = fd.block_cache().map(|c| c.stats().readaheads).unwrap_or(0);
    let cold = scan("cold");
    let ra_cold = fd.block_cache().map(|c| c.stats().readaheads).unwrap_or(0) - ra_before;
    let warm = scan("warm");
    plfs.close(&fd, 0).expect("readcache close");
    (cold, warm, ra_cold)
}

/// Sweep [`READCACHE_READS`] (the first two at quick scale) over the four
/// read arms. Every arm runs the identical sequential scan through the
/// real engine over the same in-memory container; backing preads are
/// measured per arm, then costed against the [`presets::tier_slow`] per-op
/// latency and bandwidth plus the client memory rate — so the figure is
/// deterministic across runners.
///
/// Model: a scan pays one device op per backing pread, device bandwidth
/// for every byte it fetches (each byte exactly once on any cold scan —
/// the file is block-aligned), and memory bandwidth for every byte it
/// returns. The warm re-read fetches nothing, so it pays memory only.
pub fn readcache_comparison(scale: Scale) -> ReadCacheReport {
    use plfs::{CacheConf, MemBacking};
    use std::sync::Arc;

    let (file_bytes, reads): (u64, &[usize]) = match scale {
        Scale::Paper => (8 << 20, &READCACHE_READS[..]),
        Scale::Quick => (2 << 20, &READCACHE_READS[..2]),
    };
    let ra_conf = CacheConf::sized(2 * file_bytes as usize);
    let nora_conf = ra_conf.with_readahead(0, 0);
    let block_bytes = ra_conf.block_bytes as u64;
    assert_eq!(file_bytes % block_bytes, 0, "file must be block-aligned");

    let dev = presets::tier_slow();
    let dev_bw = dev.peak_storage_bw();
    let dev_op_lat = dev.fs.per_op_latency;
    let mem_bw = dev.cluster.mem_bw;
    // Cost the measured counts: device ops + device bytes + memory copy.
    let cost = |preads: u64, dev_bytes: u64| {
        preads as f64 * dev_op_lat + dev_bytes as f64 / dev_bw + file_bytes as f64 / mem_bw
    };

    let base = Arc::new(MemBacking::new());
    readcache_file(&base, file_bytes, block_bytes as usize);

    let rows: Vec<ReadCacheRow> = reads
        .iter()
        .map(|&read| {
            let (uncached_preads, _, _) =
                readcache_arm(&base, CacheConf::disabled(), read, file_bytes);
            let (nora_preads, nora_warm, _) = readcache_arm(&base, nora_conf, read, file_bytes);
            let (ra_preads, warm_preads, readaheads) =
                readcache_arm(&base, ra_conf, read, file_bytes);
            // A silently disabled cache or readahead path must fail figure
            // generation, not produce a flat row.
            assert_eq!(nora_warm, 0, "unprefetched warm re-read hit the device");
            assert_eq!(warm_preads, 0, "warm re-read hit the device");
            assert!(
                ra_preads < nora_preads,
                "readahead must coalesce device ops: {ra_preads} vs {nora_preads}"
            );
            ReadCacheRow {
                read_bytes: read as u64,
                file_bytes,
                uncached_preads,
                nora_preads,
                ra_preads,
                warm_preads,
                readaheads,
                uncached_secs: cost(uncached_preads, file_bytes),
                nora_secs: cost(nora_preads, file_bytes),
                cold_secs: cost(ra_preads, file_bytes),
                warm_secs: cost(warm_preads, 0),
            }
        })
        .collect();

    let head = &rows[0];
    ReadCacheReport {
        warm_vs_cold: head.warm_speedup(),
        readahead_speedup: head.readahead_speedup(),
        rows,
        block_bytes,
        dev_bw,
        dev_op_lat,
        mem_bw,
    }
}

/// Render the readcache sweep.
pub fn render_readcache(r: &ReadCacheReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9}{:>12}{:>10}{:>9}{:>9}{:>11}{:>11}{:>11}{:>9}{:>9}\n",
        "Read KiB",
        "direct ops",
        "noRA ops",
        "RA ops",
        "warm ops",
        "direct",
        "noRA",
        "cold",
        "RA x",
        "warm x"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:>9}{:>12}{:>10}{:>9}{:>9}{:>10.3}s{:>10.3}s{:>10.3}s{:>8.1}x{:>8.1}x\n",
            row.read_bytes >> 10,
            row.uncached_preads,
            row.nora_preads,
            row.ra_preads,
            row.warm_preads,
            row.uncached_secs,
            row.nora_secs,
            row.cold_secs,
            row.readahead_speedup(),
            row.warm_speedup(),
        ));
    }
    out.push_str(&format!(
        "\nwarm re-read {:.1}x cold, readahead {:.1}x unprefetched ({} KiB reads; {} KiB blocks, device {:.0} MB/s / {:.1} ms, mem {:.0} GB/s)\n",
        r.warm_vs_cold,
        r.readahead_speedup,
        r.rows[0].read_bytes >> 10,
        r.block_bytes >> 10,
        r.dev_bw / 1e6,
        r.dev_op_lat * 1e3,
        r.mem_bw / 1e9,
    ));
    out
}

// ---------------------------------------------------------------------------
// Rendering helpers.
// ---------------------------------------------------------------------------

/// Render a panel as an aligned text table (methods as columns).
pub fn render_panel(p: &Panel) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {}\n", p.title));
    out.push_str(&format!("{:>8}", p.xlabel));
    for s in &p.series {
        out.push_str(&format!("{:>12}", s.label));
    }
    out.push('\n');
    let xs: Vec<usize> = p.series[0].points.iter().map(|&(x, _)| x).collect();
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>8}"));
        for s in &p.series {
            out.push_str(&format!("{:>12.1}", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

/// Render Table II in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:>16}{:>20}\n",
        "", "PLFS Container", "Standard UNIX File"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>16.3}{:>20.3}\n",
            r.tool, r.plfs_secs, r.standard_secs
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// JSON output (paperbench --json / --emit-json).
// ---------------------------------------------------------------------------

impl ToJson for Series {
    fn to_json_value(&self) -> Value {
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|&(x, y)| Value::Array(vec![Value::from(x as u64), Value::from(y)]))
            .collect();
        Value::object()
            .with("label", self.label.as_str())
            .with("points", Value::Array(points))
    }
}

impl ToJson for Panel {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("title", self.title.as_str())
            .with("xlabel", self.xlabel.as_str())
            .with("series", self.series.to_json_value())
    }
}

impl ToJson for Table2Row {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("tool", self.tool.as_str())
            .with("plfs_secs", self.plfs_secs)
            .with("standard_secs", self.standard_secs)
    }
}

impl ToJson for Crossover {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("platform", self.platform.as_str())
            .with(
                "cores",
                Value::Array(self.cores.iter().map(|&c| Value::from(c as u64)).collect()),
            )
            .with(
                "speedup",
                Value::Array(self.speedup.iter().map(|&s| Value::from(s)).collect()),
            )
            .with("harmful_at", self.harmful_at.map(|c| c as u64))
    }
}

impl ToJson for StagingRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("cores", self.cores as u64)
            .with("lustre_mpiio", self.lustre_mpiio)
            .with("lustre_plfs", self.lustre_plfs)
            .with("staging", self.staging)
    }
}

impl ToJson for ReadPathRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("droppings", self.droppings as u64)
            .with("entries", self.entries as u64)
            .with("serial_open_ms", self.serial_open_ms)
            .with("parallel_open_ms", self.parallel_open_ms)
            .with("open_speedup", self.open_speedup())
            .with("serial_read_mbs", self.serial_read_mbs)
            .with("fanout_read_mbs", self.fanout_read_mbs)
    }
}

impl ToJson for WritePathRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("writers", self.writers as u64)
            .with("writes_per_writer", self.writes_per_writer as u64)
            .with("block", self.block as u64)
            .with("serial_write_mbs", self.serial_write_mbs)
            .with("sharded_write_mbs", self.sharded_write_mbs)
            .with("write_speedup", self.write_speedup())
            .with("append_ns", self.append_ns)
            .with("full_refresh_ms", self.full_refresh_ms)
            .with("incremental_refresh_ms", self.incremental_refresh_ms)
            .with("refresh_speedup", self.refresh_speedup())
    }
}

impl ToJson for ReadPathProjection {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("platform", self.platform.as_str())
            .with("droppings", self.droppings as u64)
            .with("serial_open_secs", self.serial_open_secs)
            .with("parallel_open_secs", self.parallel_open_secs)
    }
}

impl ToJson for MetadataRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("phase", self.phase.as_str())
            .with("eager_ops", self.eager_ops)
            .with("cached_ops", self.cached_ops)
            .with("ops_reduction", self.ops_reduction())
            .with("eager_us", self.eager_us)
            .with("cached_us", self.cached_us)
    }
}

impl ToJson for MetadataStormRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("procs", self.procs)
            .with("eager_ops_per_open", self.eager_ops_per_open)
            .with("cached_ops_per_open", self.cached_ops_per_open)
            .with("eager_secs", self.eager_secs)
            .with("cached_secs", self.cached_secs)
            .with("speedup", self.speedup())
    }
}

impl ToJson for MetadataReport {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("measured", self.measured.to_json_value())
            .with("storm", self.storm.to_json_value())
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("cache_hit_rate", self.cache_hit_rate())
    }
}

impl ToJson for IndexScaleRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("factor", self.factor as u64)
            .with("entries", self.entries as u64)
            .with("eager_resident_bytes", self.eager_resident_bytes as u64)
            .with("compact_resident_bytes", self.compact_resident_bytes as u64)
            .with("eager_open_read_ms", self.eager_open_read_ms)
            .with("compact_open_read_ms", self.compact_open_read_ms)
    }
}

impl ToJson for IndexScaleReport {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("rows", self.rows.to_json_value())
            .with("memory_ratio", self.memory_ratio)
            .with("latency_ratio", self.latency_ratio)
    }
}

impl ToJson for NoncontigRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("ranks", self.ranks as u64)
            .with("ppn", self.ppn as u64)
            .with("block", self.block)
            .with("extents_per_call", self.extents_per_call as u64)
            .with("sieving_secs", self.sieving_secs)
            .with("per_extent_secs", self.per_extent_secs)
            .with("listio_secs", self.listio_secs)
            .with("sieving_bytes", self.sieving_bytes)
            .with("listio_bytes", self.listio_bytes)
            .with("listio_speedup", self.listio_speedup())
    }
}

impl ToJson for NoncontigReport {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("rows", self.rows.to_json_value())
            .with("listio_vs_sieving", self.listio_vs_sieving)
            .with("listio_vs_per_extent", self.listio_vs_per_extent)
    }
}

impl ToJson for Staging2Row {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("ranks", self.ranks as u64)
            .with("phases", self.phases as u64)
            .with("ckpt_bytes", self.ckpt_bytes)
            .with("direct_ops", self.direct_ops)
            .with("fast_ops", self.fast_ops)
            .with("slow_ops", self.slow_ops)
            .with("destages", self.destages)
            .with("destaged_bytes", self.destaged_bytes)
            .with("batch_submits", self.batch_submits)
            .with("direct_secs", self.direct_secs)
            .with("tiered_secs", self.tiered_secs)
            .with("compute_secs", self.compute_secs)
            .with("destage_secs", self.destage_secs)
            .with("overlap_speedup", self.overlap_speedup())
    }
}

impl ToJson for Staging2Report {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("rows", self.rows.to_json_value())
            .with("destage_overlap_speedup", self.destage_overlap_speedup)
            .with("fast_bw", self.fast_bw)
            .with("slow_bw", self.slow_bw)
            .with("fast_op_lat", self.fast_op_lat)
            .with("slow_op_lat", self.slow_op_lat)
    }
}

impl ToJson for ReadCacheRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("read_bytes", self.read_bytes)
            .with("file_bytes", self.file_bytes)
            .with("uncached_preads", self.uncached_preads)
            .with("nora_preads", self.nora_preads)
            .with("ra_preads", self.ra_preads)
            .with("warm_preads", self.warm_preads)
            .with("readaheads", self.readaheads)
            .with("uncached_secs", self.uncached_secs)
            .with("nora_secs", self.nora_secs)
            .with("cold_secs", self.cold_secs)
            .with("warm_secs", self.warm_secs)
            .with("warm_speedup", self.warm_speedup())
            .with("readahead_speedup", self.readahead_speedup())
            .with("cache_speedup", self.cache_speedup())
    }
}

impl ToJson for ReadCacheReport {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("rows", self.rows.to_json_value())
            .with("warm_vs_cold", self.warm_vs_cold)
            .with("readahead_speedup", self.readahead_speedup)
            .with("block_bytes", self.block_bytes)
            .with("dev_bw", self.dev_bw)
            .with("dev_op_lat", self.dev_op_lat)
            .with("mem_bw", self.mem_bw)
    }
}

impl ToJson for IorRow {
    fn to_json_value(&self) -> Value {
        Value::object()
            .with("layout", self.layout.as_str())
            .with("api", self.api.as_str())
            .with("transfer", self.transfer)
            .with("mpiio", self.mpiio)
            .with("ldplfs", self.ldplfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig3_has_all_panels_and_methods() {
        let panels = fig3(Scale::Quick);
        assert_eq!(panels.len(), 6);
        for p in &panels {
            assert_eq!(p.series.len(), 4);
            for s in &p.series {
                assert_eq!(s.points.len(), FIG3_NODES.len());
                for &(_, bw) in &s.points {
                    assert!(bw.is_finite() && bw > 0.0);
                }
            }
        }
    }

    #[test]
    fn quick_fig3_headline_claims() {
        let panels = fig3(Scale::Quick);
        // On the 4-ppn write panel at 16+ nodes: LDPLFS ≈ ROMIO, both beat
        // FUSE, and PLFS beats plain MPI-IO (the paper's ~2×).
        let write4 = panels
            .iter()
            .find(|p| p.title == "Write (4 Proc/Node)")
            .unwrap();
        let get = |label: &str| {
            write4
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .iter()
                .find(|&&(x, _)| x == 16)
                .unwrap()
                .1
        };
        let (mpiio, fuse, romio, ldplfs) =
            (get("MPI-IO"), get("FUSE"), get("ROMIO"), get("LDPLFS"));
        assert!(
            ldplfs > mpiio,
            "PLFS should beat MPI-IO: {ldplfs} vs {mpiio}"
        );
        assert!(ldplfs > fuse, "LDPLFS should beat FUSE: {ldplfs} vs {fuse}");
        let ratio = ldplfs / romio;
        assert!((0.85..1.15).contains(&ratio), "LDPLFS≈ROMIO, got {ratio}");
    }

    #[test]
    fn table2_rows_and_relationships() {
        let rows = table2(1 << 30); // 1 GB keeps the test quick
        assert_eq!(rows.len(), 5);
        let by = |name: &str| rows.iter().find(|r| r.tool == name).unwrap();
        // CPU-bound tools: layout-independent.
        let grep = by("grep");
        assert!((grep.plfs_secs / grep.standard_secs - 1.0).abs() < 0.05);
        // grep much slower than cat (31 MB/s vs ~160 MB/s).
        assert!(grep.standard_secs > by("cat").standard_secs * 2.0);
        // cp write-bound: slower than cat.
        assert!(by("cp (read)").standard_secs > by("cat").standard_secs);
        // PLFS never catastrophically slower serially.
        for r in &rows {
            assert!(r.plfs_secs < r.standard_secs * 1.2, "{:?}", r);
        }
    }

    #[test]
    fn quick_readpath_measures_and_projects() {
        let rows = readpath_comparison(Scale::Quick);
        assert_eq!(rows.len(), READPATH_DROPPINGS.len());
        for r in &rows {
            assert!(r.serial_open_ms > 0.0 && r.parallel_open_ms > 0.0);
            assert!(r.serial_read_mbs > 0.0 && r.fanout_read_mbs > 0.0);
        }
        // The biggest container is where the merge dominates: the parallel
        // open must win there (the acceptance bar is checked in micro_plfs).
        let big = rows.last().unwrap();
        assert!(
            big.open_speedup() > 1.0,
            "parallel open should beat serial at 256 droppings: {big:?}"
        );
        let txt = render_readpath(&rows);
        assert!(txt.contains("Droppings") && txt.contains("speedup"));

        let proj = readpath_projection(16);
        assert_eq!(proj.len(), 2 * READPATH_DROPPINGS.len());
        assert!(proj
            .iter()
            .all(|p| p.serial_open_secs > p.parallel_open_secs));
        let txt = render_readpath_projection(&proj);
        assert!(txt.contains("Sierra"));
    }

    #[test]
    fn quick_writepath_measures() {
        let rows = writepath_comparison(Scale::Quick);
        assert_eq!(rows.len(), WRITEPATH_WRITERS.len());
        for r in &rows {
            assert!(r.serial_write_mbs > 0.0 && r.sharded_write_mbs > 0.0);
            assert!(r.append_ns > 0.0 && r.append_ns.is_finite());
            assert!(r.full_refresh_ms > 0.0 && r.incremental_refresh_ms > 0.0);
        }
        // The algorithmic win is core-count independent: patching the
        // cached index must beat a full re-merge per read once several
        // writers keep appending.
        let big = rows.last().unwrap();
        assert!(
            big.refresh_speedup() > 1.0,
            "incremental refresh should beat full re-merge at 8 writers: {big:?}"
        );
        let txt = render_writepath(&rows);
        assert!(txt.contains("Writers") && txt.contains("speedup"));
    }

    #[test]
    fn quick_metadata_measures_and_projects() {
        let r = metadata_comparison(Scale::Quick);
        assert_eq!(r.measured.len(), 3);
        let reopen = &r.measured[0];
        assert_eq!(reopen.phase, "reopen");
        // The tentpole claim: warm reopen costs zero backing metadata ops,
        // and the eager path pays at least a 3x multiple.
        assert_eq!(reopen.cached_ops, 0, "warm reopen should be free: {r:?}");
        assert!(reopen.ops_reduction() >= 3.0, "reduction too small: {r:?}");
        for m in &r.measured {
            assert!(
                m.cached_ops <= m.eager_ops,
                "cache must never add ops: {m:?}"
            );
            assert!(m.eager_us > 0.0 && m.cached_us > 0.0);
        }
        assert_eq!(r.storm.len(), METADATA_STORM_PROCS.len());
        for s in &r.storm {
            assert!(
                s.cached_secs < s.eager_secs,
                "cached open must beat eager at {} procs: {s:?}",
                s.procs
            );
        }
        assert!(r.cache_hits > 0 && r.cache_hit_rate() > 0.5);
        let txt = render_metadata(&r);
        assert!(txt.contains("reopen") && txt.contains("Procs") && txt.contains("speedup"));
    }

    #[test]
    fn quick_indexscale_memory_stays_bounded() {
        let r = indexscale_comparison(Scale::Quick);
        assert_eq!(r.rows.len(), INDEXSCALE_FACTORS.len());
        for row in &r.rows {
            assert!(row.eager_resident_bytes > 0 && row.compact_resident_bytes > 0);
            assert!(row.eager_open_read_ms > 0.0 && row.compact_open_read_ms > 0.0);
        }
        // At 1x the read extent covers the whole file, so the bounded view
        // holds everything the eager index does; the win appears once the
        // file outgrows the read. At 100x the bounded open must hold far
        // less than the fully-expanded index.
        let big = r.rows.last().unwrap();
        assert!(
            big.compact_resident_bytes * 4 < big.eager_resident_bytes,
            "bounded open should hold a fraction of eager at {}x: {big:?}",
            big.factor
        );
        // The acceptance bar: 100x the entries, at most 2x the resident
        // bytes (the compact records are O(writers), the cached view is
        // O(read extent)).
        assert!(
            r.memory_ratio <= 2.0,
            "bounded residency must not scale with entries: {r:?}"
        );
        // Latency flatness is asserted loosely here (timing noise at quick
        // scale); the committed paper-scale baseline gates the real ratio.
        assert!(r.latency_ratio.is_finite() && r.latency_ratio > 0.0);
        let txt = render_indexscale(&r);
        assert!(txt.contains("Factor") && txt.contains("memory"));
    }

    #[test]
    fn quick_noncontig_listio_beats_sieving() {
        let r = noncontig_comparison(Scale::Quick);
        assert_eq!(r.rows.len(), NONCONTIG_JOBS.len());
        for row in &r.rows {
            assert!(row.sieving_secs > 0.0 && row.per_extent_secs > 0.0 && row.listio_secs > 0.0);
            // List I/O never loses to either fallback at any scale, and
            // sieving always moves more bytes (buffer-sized RMW per extent).
            assert!(
                row.listio_secs <= row.per_extent_secs,
                "batching must not slow the PLFS path: {row:?}"
            );
            assert!(
                row.listio_secs < row.sieving_secs,
                "list I/O must beat sieving: {row:?}"
            );
            assert!(
                row.sieving_bytes > row.listio_bytes,
                "sieving must show RMW amplification: {row:?}"
            );
        }
        // The acceptance bar (same ratio the committed baseline gates):
        // ≥2x over sieving on the largest job, deterministic because both
        // times come from the simulated clocks.
        assert!(
            r.listio_vs_sieving >= 2.0,
            "list I/O should be >=2x sieving: {r:?}"
        );
        assert!(r.listio_vs_per_extent >= 1.0, "{r:?}");
        let txt = render_noncontig(&r);
        assert!(txt.contains("Ranks") && txt.contains("sieving") && txt.contains("speedup"));
    }

    #[test]
    fn quick_staging2_overlap_beats_direct() {
        let r = staging2_comparison(Scale::Quick);
        assert_eq!(r.rows.len(), 2, "quick sweeps the first two rank counts");
        for row in &r.rows {
            // The workload really ran: droppings sealed and destaged, the
            // submission layer drained batches, and the direct arm issued
            // strictly more slow-tier ops than the background destage.
            assert!(
                row.destages > 0 && row.destaged_bytes >= row.ckpt_bytes,
                "{row:?}"
            );
            assert!(row.batch_submits > 0, "{row:?}");
            assert!(row.direct_ops > row.slow_ops, "{row:?}");
            assert!(row.tiered_secs < row.direct_secs, "{row:?}");
        }
        // The acceptance bar (same ratio the committed baseline gates):
        // deterministic because the times are modelled from measured op
        // counts and fixed preset rates, not wall clocks.
        assert!(
            r.destage_overlap_speedup >= 2.0,
            "tiered+batched should be >=2x direct-to-slow: {r:?}"
        );
        let txt = render_staging2(&r);
        assert!(txt.contains("Ranks") && txt.contains("destage") && txt.contains("speedup"));
    }

    #[test]
    fn quick_readcache_cache_and_readahead_win() {
        let r = readcache_comparison(Scale::Quick);
        assert_eq!(r.rows.len(), 2, "quick sweeps the first two read sizes");
        for row in &r.rows {
            // The workload really ran: the direct arm paid one device op
            // per call, caching cut that to one per block at most, the
            // warm re-read never touched the device, and readahead
            // windows actually fired.
            assert_eq!(row.warm_preads, 0, "{row:?}");
            assert!(row.nora_preads <= row.uncached_preads, "{row:?}");
            assert!(row.ra_preads < row.nora_preads, "{row:?}");
            assert!(row.readaheads > 0, "{row:?}");
            assert!(
                row.warm_secs > 0.0 && row.cold_secs > row.warm_secs,
                "{row:?}"
            );
        }
        // Small reads are where per-op latency dominates: the cache must
        // cut device ops by the block/read ratio there.
        let small = &r.rows[0];
        assert!(
            small.nora_preads * 4 < small.uncached_preads,
            "block caching should collapse small-read device ops: {small:?}"
        );
        // The acceptance bars (same ratios the committed baseline gates):
        // deterministic because the times are modelled from measured op
        // counts and fixed preset rates, not wall clocks.
        assert!(
            r.warm_vs_cold >= 3.0,
            "warm re-read should be >=3x cold: {r:?}"
        );
        assert!(
            r.readahead_speedup >= 2.0,
            "readahead should be >=2x unprefetched: {r:?}"
        );
        let txt = render_readcache(&r);
        assert!(txt.contains("Read KiB") && txt.contains("warm re-read"));
    }

    #[test]
    fn render_helpers_produce_tables() {
        let rows = table2(64 << 20);
        let txt = render_table2(&rows);
        assert!(txt.contains("md5sum"));
        assert!(txt.contains("PLFS Container"));
        let p = Panel {
            title: "T".into(),
            xlabel: "Nodes".into(),
            series: vec![Series {
                label: "A".into(),
                points: vec![(1, 10.0), (2, 20.0)],
            }],
        };
        let txt = render_panel(&p);
        assert!(txt.contains("Nodes"));
        assert!(txt.contains("10.0"));
    }
}
