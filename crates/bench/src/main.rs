//! `paperbench`: regenerate every table and figure of the LDPLFS paper.
//!
//! ```text
//! paperbench table1              # machine specs (Table I inputs)
//! paperbench fig3   [--quick]    # MPI-IO Test on Minerva (6 panels)
//! paperbench table2 [--gb N]     # UNIX tools on the login node
//! paperbench fig4 --class C|D    # NAS BT on Sierra
//! paperbench fig5 [--subdirs N]  # FLASH-IO on Sierra
//! paperbench crossover           # where PLFS starts to hurt (future work)
//! paperbench readpath [--quick]  # serial vs parallel container open/read
//! paperbench writepath [--quick] # serial vs sharded/buffered writers
//! paperbench metadata [--quick]  # per-open metadata ops + MDS-storm projection
//! paperbench indexscale [--quick] # eager vs bounded merged-index residency
//! paperbench noncontig [--quick] # list I/O vs data sieving on strided views
//! paperbench staging2 [--quick]  # tiered burst-buffer + batched submission vs direct
//! paperbench readcache [--quick] # data block cache + adaptive readahead vs direct reads
//! paperbench all [--quick]       # everything above
//! paperbench ... --json PATH     # also dump JSON for EXPERIMENTS.md
//! paperbench ... --emit-json DIR # figure data + per-layer op/latency trace
//! ```

use apps::nas_bt::BtClass;
use bench::{
    crossover, fig3, fig4, fig5_with, indexscale_comparison, metadata_comparison,
    noncontig_comparison, readpath_comparison, readpath_projection, render_indexscale,
    render_metadata, render_noncontig, render_panel, render_readpath, render_readpath_projection,
    render_table2, render_writepath, table2, writepath_comparison, Scale,
};
use jsonlite::{ToJson, Value};
use simfs::presets;

struct Args {
    cmd: String,
    quick: bool,
    gb: u64,
    class: Option<BtClass>,
    subdirs: u32,
    json: Option<String>,
    emit_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cmd: "all".to_string(),
        quick: false,
        gb: 4,
        class: None,
        subdirs: 32,
        json: None,
        emit_json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    if let Some(first) = it.next() {
        args.cmd = first.clone();
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--gb" => {
                args.gb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--gb needs a number"));
            }
            "--class" => {
                args.class = match it.next().map(|s| s.as_str()) {
                    Some("C") | Some("c") => Some(BtClass::C),
                    Some("D") | Some("d") => Some(BtClass::D),
                    _ => die("--class needs C or D"),
                };
            }
            "--subdirs" => {
                args.subdirs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--subdirs needs a number"));
            }
            "--json" => {
                args.json = Some(
                    it.next()
                        .unwrap_or_else(|| die("--json needs a path"))
                        .clone(),
                );
            }
            "--emit-json" => {
                args.emit_json = Some(
                    it.next()
                        .unwrap_or_else(|| die("--emit-json needs a directory"))
                        .clone(),
                );
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("paperbench: {msg}");
    std::process::exit(2)
}

fn scale(quick: bool) -> Scale {
    if quick {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

fn write_json_file(file: &str, value: &Value) {
    if let Some(dir) = std::path::Path::new(file).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(file, value.to_json_pretty()) {
        eprintln!("paperbench: writing {file}: {e}");
    }
}

fn dump_json<T: ToJson>(path: &Option<String>, name: &str, value: &T) {
    if let Some(p) = path {
        write_json_file(&format!("{p}/{name}.json"), &value.to_json_value());
    }
}

/// Start a fresh per-figure trace window: clear the global sink and turn it
/// on for the duration of the figure run (no-op without `--emit-json`).
fn trace_begin(args: &Args) {
    if args.emit_json.is_some() {
        let sink = iotrace::global();
        sink.reset();
        sink.set_enabled(true);
    }
}

/// Close the trace window and write `BENCH_<figure>.json`: the figure data
/// plus per-layer op counts, byte totals and log2-ns latency histograms.
fn trace_emit<T: ToJson>(args: &Args, figure: &str, data: &T) {
    let Some(dir) = &args.emit_json else { return };
    let sink = iotrace::global();
    sink.set_enabled(false);
    let snap = sink.snapshot();
    let doc = Value::object()
        .with("figure", figure)
        .with("generated_by", "paperbench")
        .with("data", data.to_json_value())
        .with("trace", snap.to_json());
    let name = sanitize(figure);
    write_json_file(&format!("{dir}/BENCH_{name}.json"), &doc);
    sink.reset();
}

/// Keep emitted file names shell-friendly regardless of figure labels.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn cmd_table1() {
    println!("# Table I: benchmarking platforms\n");
    for p in [presets::minerva(), presets::sierra()] {
        println!("{}", p.fs.name);
        println!("  nodes                 {}", p.cluster.nodes);
        println!("  cores per node        {}", p.cluster.cores_per_node);
        println!("  I/O servers           {}", p.fs.servers);
        println!("  lanes per server      {}", p.fs.lanes_per_server);
        println!(
            "  effective storage bw  {:.1} MB/s (calibrated; theoretical peaks 4/30 GB/s)",
            p.peak_storage_bw() / 1e6
        );
        println!("  metadata              {:?}", short_mds(&p));
        println!();
    }
}

fn short_mds(p: &simfs::Platform) -> &'static str {
    match p.fs.mds {
        simfs::MdsConfig::Dedicated { .. } => "dedicated MDS (Lustre)",
        simfs::MdsConfig::Distributed { .. } => "distributed (GPFS)",
    }
}

fn cmd_fig3(args: &Args) {
    println!("# Figure 3: MPI-IO Test bandwidths on Minerva (MB/s)\n");
    trace_begin(args);
    let panels = fig3(scale(args.quick));
    for p in &panels {
        println!("{}", render_panel(p));
    }
    dump_json(&args.json, "fig3", &panels);
    trace_emit(args, "fig3", &panels);
}

fn cmd_table2(args: &Args) {
    println!(
        "# Table II: UNIX tool times on a {} GB file (seconds)\n",
        args.gb
    );
    trace_begin(args);
    let rows = table2(args.gb * 1_000_000_000);
    println!("{}", render_table2(&rows));
    dump_json(&args.json, "table2", &rows);
    trace_emit(args, "table2", &rows);
}

fn cmd_fig4(args: &Args) {
    let classes = match args.class {
        Some(c) => vec![c],
        None => vec![BtClass::C, BtClass::D],
    };
    for class in classes {
        println!(
            "# Figure 4{}: BT class {} on Sierra (MB/s)\n",
            match class {
                BtClass::C => "a",
                BtClass::D => "b",
            },
            class.label()
        );
        trace_begin(args);
        let p = fig4(class, scale(args.quick));
        println!("{}", render_panel(&p));
        dump_json(&args.json, &format!("fig4{}", class.label()), &p);
        trace_emit(args, &format!("fig4{}", class.label()), &p);
    }
}

fn cmd_fig5(args: &Args) {
    println!(
        "# Figure 5: FLASH-IO on Sierra (MB/s), {} hostdirs\n",
        args.subdirs
    );
    trace_begin(args);
    let p = fig5_with(args.subdirs, scale(args.quick));
    println!("{}", render_panel(&p));
    dump_json(&args.json, "fig5", &p);
    trace_emit(args, "fig5", &p);
}

fn cmd_ior(args: &Args) {
    println!("# IOR parameter sweep on Sierra (write, 96 processes)\n");
    trace_begin(args);
    let rows = bench::ior_sweep(96);
    println!("{}", bench::render_ior(&rows));
    dump_json(&args.json, "ior", &rows);
    trace_emit(args, "ior", &rows);
}

fn cmd_staging(args: &Args) {
    println!("# Zest-style staging vs PLFS vs plain Lustre (FLASH-IO)\n");
    trace_begin(args);
    let rows = bench::staging_comparison();
    println!("{}", bench::render_staging(&rows));
    println!(
        "(per-node staging lanes scale linearly with node count and dodge\n          shared-FS contention entirely — but the data still needs a later\n          copy-out to the real file system, which PLFS does not)\n"
    );
    dump_json(&args.json, "staging", &rows);
    trace_emit(args, "staging", &rows);
}

fn cmd_readpath(args: &Args) {
    println!("# Read path: serial vs parallel container open/read\n");
    trace_begin(args);
    let rows = readpath_comparison(scale(args.quick));
    println!("## Measured (in-memory backing, this host)\n");
    println!("{}", render_readpath(&rows));
    let proj = readpath_projection(16);
    println!("## Projected at paper scale (simfs metadata model, 16 threads)\n");
    println!("{}", render_readpath_projection(&proj));
    let doc = Value::object()
        .with("measured", rows.to_json_value())
        .with("projected", proj.to_json_value());
    dump_json(&args.json, "readpath", &doc);
    trace_emit(args, "readpath", &doc);
}

fn cmd_writepath(args: &Args) {
    println!("# Write path: serial vs sharded + write-behind-buffered writers\n");
    trace_begin(args);
    let rows = writepath_comparison(scale(args.quick));
    println!("## Measured (in-memory backing, this host)\n");
    println!("{}", render_writepath(&rows));
    dump_json(&args.json, "writepath", &rows);
    trace_emit(args, "writepath", &rows);
}

fn cmd_metadata(args: &Args) {
    println!("# Metadata fast path: per-open backing ops, eager vs cached\n");
    trace_begin(args);
    let report = metadata_comparison(scale(args.quick));
    println!("## Measured (in-memory backing, this host) + MDS-storm projection\n");
    println!("{}", render_metadata(&report));
    println!(
        "(storm rows replay the measured open+write+close profile for N\n          simultaneous processes through Sierra's dedicated-MDS model; the\n          speedup column is the projected time-to-open ratio)\n"
    );
    dump_json(&args.json, "metadata", &report);
    trace_emit(args, "metadata", &report);
}

fn cmd_indexscale(args: &Args) {
    println!("# Index residency: eager vs bounded merged index, 1x-100x entries\n");
    trace_begin(args);
    let report = indexscale_comparison(scale(args.quick));
    println!("## Measured (in-memory backing, this host)\n");
    println!("{}", render_indexscale(&report));
    dump_json(&args.json, "indexscale", &report);
    trace_emit(args, "indexscale", &report);
}

fn cmd_noncontig(args: &Args) {
    println!("# Noncontiguous I/O: list I/O vs data sieving vs per-extent lowering\n");
    trace_begin(args);
    let report = noncontig_comparison(scale(args.quick));
    println!("## Simulated block-cyclic checkpoint (write + read back)\n");
    println!("{}", render_noncontig(&report));
    println!(
        "(sieving pays a 512 KiB read-modify-write per strided extent; PLFS\n          list I/O batches every extent of a view access into one op and one\n          index record — the per-extent column isolates the batching win)\n"
    );
    dump_json(&args.json, "noncontig", &report);
    trace_emit(args, "noncontig", &report);
}

fn cmd_staging2(args: &Args) {
    println!("# Burst-buffer staging: tiered+batched backend vs direct-to-slow\n");
    trace_begin(args);
    let report = bench::staging2_comparison(scale(args.quick));
    println!("## Measured op counts (in-memory tiers), costed at preset rates\n");
    println!("{}", bench::render_staging2(&report));
    println!(
        "(the direct arm pays the slow tier's per-op latency for every\n          application write; the tiered arm lands writes on the fast tier and\n          destages sealed droppings to the slow tier overlapped with compute)\n"
    );
    dump_json(&args.json, "staging2", &report);
    trace_emit(args, "staging2", &report);
}

fn cmd_readcache(args: &Args) {
    println!("# Read cache: block cache + adaptive readahead vs direct reads\n");
    trace_begin(args);
    let report = bench::readcache_comparison(scale(args.quick));
    println!("## Measured backing preads (in-memory container), costed at preset rates\n");
    println!("{}", bench::render_readcache(&report));
    println!(
        "(the direct arm pays the device's per-op latency for every\n          application read; the cached arm pays it once per block, readahead\n          coalesces adjacent blocks into prefetch runs, and a warm re-read\n          never touches the device at all)\n"
    );
    dump_json(&args.json, "readcache", &report);
    trace_emit(args, "readcache", &report);
}

fn cmd_crossover(args: &Args) {
    println!("# PLFS benefit crossover (FLASH-IO, LDPLFS vs MPI-IO)\n");
    for (platform, label) in [
        (presets::sierra(), "Sierra (Lustre, dedicated MDS)"),
        (presets::minerva(), "Minerva (GPFS, distributed metadata)"),
    ] {
        trace_begin(args);
        let c = crossover(&platform, label);
        println!("{label}");
        println!("{:>8}{:>12}", "Cores", "Speedup");
        for (cores, s) in c.cores.iter().zip(&c.speedup) {
            println!("{cores:>8}{s:>12.2}");
        }
        match c.harmful_at {
            Some(at) => println!("  -> PLFS harmful from {at} cores\n"),
            None => println!("  -> PLFS never harmful in this sweep\n"),
        }
        dump_json(&args.json, &format!("crossover_{label}"), &c);
        trace_emit(args, &format!("crossover_{}", c.platform), &c);
    }
}

fn main() {
    let args = parse_args();
    match args.cmd.as_str() {
        "table1" => cmd_table1(),
        "fig3" => cmd_fig3(&args),
        "table2" => cmd_table2(&args),
        "fig4" => cmd_fig4(&args),
        "fig5" => cmd_fig5(&args),
        "crossover" => cmd_crossover(&args),
        "ior" => cmd_ior(&args),
        "staging" => cmd_staging(&args),
        "staging2" => cmd_staging2(&args),
        "readcache" => cmd_readcache(&args),
        "readpath" => cmd_readpath(&args),
        "writepath" => cmd_writepath(&args),
        "metadata" => cmd_metadata(&args),
        "indexscale" => cmd_indexscale(&args),
        "noncontig" => cmd_noncontig(&args),
        "all" => {
            cmd_table1();
            cmd_fig3(&args);
            cmd_table2(&args);
            cmd_fig4(&args);
            cmd_fig5(&args);
            cmd_crossover(&args);
            cmd_ior(&args);
            cmd_staging(&args);
            cmd_staging2(&args);
            cmd_readcache(&args);
            cmd_readpath(&args);
            cmd_writepath(&args);
            cmd_metadata(&args);
            cmd_indexscale(&args);
            cmd_noncontig(&args);
        }
        "--help" | "-h" | "help" => {
            println!(
                "usage: paperbench [table1|fig3|table2|fig4|fig5|crossover|ior|staging|staging2|readcache|readpath|writepath|metadata|indexscale|noncontig|all] \
                 [--quick] [--gb N] [--class C|D] [--subdirs N] [--json DIR] [--emit-json DIR]"
            );
        }
        other => die(&format!("unknown command {other}")),
    }
}
