//! Micro-benchmarks of the interposition overhead — the constant LDPLFS
//! adds to each POSIX call (fd-table lookup + two lseeks), which the paper
//! argues is small enough that LDPLFS matches the ROMIO driver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldplfs::{LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix, Whence};
use plfs::{MemBacking, Plfs};
use std::hint::black_box;
use std::sync::Arc;

fn shim(tag: &str) -> Arc<ldplfs::LdPlfs> {
    let dir = std::env::temp_dir().join(format!("ldplfs-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let under = Arc::new(RealPosix::rooted(dir).unwrap());
    Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(Arc::new(MemBacking::new())))
            .build()
            .unwrap(),
    )
}

fn bench_interception_dispatch(c: &mut Criterion) {
    let s = shim("dispatch");
    let mut g = c.benchmark_group("shim_dispatch");
    // The cost of deciding intercept-vs-passthrough (mount matching) plus
    // the op itself, for a metadata call on each side of the boundary.
    let fd = s
        .open("/plfs/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    s.write(fd, b"x").unwrap();
    s.close(fd).unwrap();
    g.bench_function("stat_intercepted", |b| {
        b.iter(|| black_box(s.stat("/plfs/f").unwrap()));
    });
    {
        let fd = s
            .open("/outside.dat", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
            .unwrap();
        s.write(fd, b"x").unwrap();
        s.close(fd).unwrap();
    }
    g.bench_function("stat_passthrough", |b| {
        b.iter(|| black_box(s.stat("/outside.dat").unwrap()));
    });
    g.finish();
}

fn bench_write_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("shim_write_64k");
    g.throughput(Throughput::Bytes(64 * 1024));
    let data = vec![9u8; 64 * 1024];

    // Through the shim into a PLFS container (fd table + 2 lseeks + PLFS).
    let s = shim("wshim");
    let fd = s
        .open("/plfs/out", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    g.bench_function("ldplfs_to_container", |b| {
        b.iter(|| black_box(s.write(fd, &data).unwrap()));
    });

    // The PLFS API called directly (no shim bookkeeping): the "ROMIO
    // driver" path the paper compares against.
    let plfs = Plfs::new(Arc::new(MemBacking::new()));
    let pfd = plfs
        .open("/out", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
        .unwrap();
    let mut off = 0u64;
    g.bench_function("plfs_api_direct", |b| {
        b.iter(|| {
            plfs.write(&pfd, &data, off, 0).unwrap();
            off += data.len() as u64;
        });
    });
    g.finish();
}

fn bench_cursor_bookkeeping(c: &mut Criterion) {
    // The paper's mechanism in isolation: lseek on the reserved fd.
    let s = shim("cursor");
    let fd = s
        .open("/plfs/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
        .unwrap();
    s.write(fd, &vec![1u8; 1 << 20]).unwrap();
    let mut g = c.benchmark_group("shim_cursor");
    g.bench_function("lseek_set", |b| {
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 4096) % (1 << 20);
            black_box(s.lseek(fd, pos as i64, Whence::Set).unwrap())
        });
    });
    g.bench_function("lseek_end", |b| {
        b.iter(|| black_box(s.lseek(fd, 0, Whence::End).unwrap()));
    });
    g.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let s = shim("openclose");
    let mut g = c.benchmark_group("shim_open_close");
    let mut i = 0u64;
    g.bench_function("create_write_close_unlink", |b| {
        b.iter(|| {
            let path = format!("/plfs/tmp{i}");
            i += 1;
            let fd = s
                .open(&path, OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                .unwrap();
            s.write(fd, b"payload").unwrap();
            s.close(fd).unwrap();
            s.unlink(&path).unwrap();
        });
    });
    g.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The observability layer's promise: with tracing off (the default) a
    // shim op pays one relaxed atomic load — compare these two numbers to
    // see what enabling costs, and that "off" matches the historic
    // untraced figures above.
    let s = shim("trace");
    let fd = s
        .open("/plfs/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
        .unwrap();
    s.write(fd, &vec![1u8; 1 << 20]).unwrap();
    let mut g = c.benchmark_group("shim_trace");
    let run = |b: &mut criterion::Bencher| {
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 4096) % (1 << 20);
            black_box(s.lseek(fd, pos as i64, Whence::Set).unwrap())
        });
    };
    iotrace::global().set_enabled(false);
    g.bench_function("lseek_tracing_off", run);
    iotrace::global().set_enabled(true);
    g.bench_function("lseek_tracing_on", run);
    iotrace::global().set_enabled(false);
    iotrace::global().reset();
    g.finish();
}

criterion_group!(
    benches,
    bench_interception_dispatch,
    bench_write_overhead,
    bench_cursor_bookkeeping,
    bench_open_close,
    bench_trace_overhead
);
criterion_main!(benches);
