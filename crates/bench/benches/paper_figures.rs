//! One Criterion bench per table/figure of the paper: each measures the
//! wall time of regenerating a representative point of that experiment on
//! the simulator. `paperbench` produces the full sweeps; these keep the
//! regeneration cost tracked and the pipelines exercised under `cargo
//! bench`.

use apps::flash_io::{self, FlashConfig};
use apps::mpi_io_test::{self, MpiIoTestConfig, Phase};
use apps::nas_bt::{self, BtClass, BtConfig};
use apps::unix_tools::sim::{tool_time, FileKind, Tool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpiio::Method;
use simfs::presets;
use std::hint::black_box;

/// Figure 3: MPI-IO Test on Minerva, one write point per method.
fn bench_fig3(c: &mut Criterion) {
    let platform = presets::minerva();
    let mut g = c.benchmark_group("fig3_mpiio_test");
    g.sample_size(20);
    for method in Method::ALL {
        g.bench_with_input(
            BenchmarkId::new("write_16n_2ppn", method.label()),
            &method,
            |b, &m| {
                let mut cfg = MpiIoTestConfig::paper(16, 2);
                cfg.bytes_per_proc = 64 << 20;
                b.iter(|| black_box(mpi_io_test::run(&platform, &cfg, m, Phase::Write).unwrap()));
            },
        );
    }
    g.finish();
}

/// Table II: serial UNIX tools on the login node (512 MB point).
fn bench_table2(c: &mut Criterion) {
    let platform = presets::login_node();
    let mut g = c.benchmark_group("table2_unix_tools");
    g.sample_size(20);
    for tool in Tool::ALL {
        g.bench_with_input(BenchmarkId::new("plfs", tool.label()), &tool, |b, &t| {
            b.iter(|| {
                black_box(
                    tool_time(
                        &platform,
                        t,
                        FileKind::PlfsContainer { droppings: 16 },
                        512 << 20,
                    )
                    .unwrap(),
                )
            });
        });
        g.bench_with_input(
            BenchmarkId::new("standard", tool.label()),
            &tool,
            |b, &t| {
                b.iter(|| {
                    black_box(tool_time(&platform, t, FileKind::Standard, 512 << 20).unwrap())
                });
            },
        );
    }
    g.finish();
}

/// Figure 4: BT classes C and D at a mid-sweep point per method.
fn bench_fig4(c: &mut Criterion) {
    let platform = presets::sierra();
    let mut g = c.benchmark_group("fig4_nas_bt");
    g.sample_size(10);
    for (class, cores) in [(BtClass::C, 256usize), (BtClass::D, 256)] {
        for method in [Method::MpiIo, Method::Romio, Method::Ldplfs] {
            g.bench_with_input(
                BenchmarkId::new(
                    format!("class{}_{}cores", class.label(), cores),
                    method.label(),
                ),
                &method,
                |b, &m| {
                    let cfg = BtConfig::paper(class, cores);
                    b.iter(|| black_box(nas_bt::run(&platform, &cfg, m).unwrap()));
                },
            );
        }
    }
    g.finish();
}

/// Figure 5: FLASH-IO at the peak (192) and collapse (1536) points.
fn bench_fig5(c: &mut Criterion) {
    let platform = presets::sierra();
    let mut g = c.benchmark_group("fig5_flash_io");
    g.sample_size(10);
    for cores in [192usize, 1536] {
        for method in [Method::MpiIo, Method::Ldplfs] {
            g.bench_with_input(
                BenchmarkId::new(format!("{cores}cores"), method.label()),
                &method,
                |b, &m| {
                    let cfg = FlashConfig::paper(cores);
                    b.iter(|| black_box(flash_io::run(&platform, &cfg, m).unwrap()));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig3, bench_table2, bench_fig4, bench_fig5);
criterion_main!(benches);
