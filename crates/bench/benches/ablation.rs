//! Ablation benches for the design choices DESIGN.md calls out — the
//! paper's §V.A future work: "investigate the low-level performance
//! effects of a log-based file system and file partitioning in isolation",
//! plus the container knobs (hostdir count, index buffer).

use apps::flash_io::{self, FlashConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpiio::Method;
use plfs::{ContainerParams, LayoutMode, MemBacking, OpenFlags, Plfs};
use simfs::presets;
use std::hint::black_box;
use std::sync::Arc;

/// Log structure vs partitioning in isolation, on the real container code:
/// 8 interleaved writers, strided pattern, measured per write call.
fn bench_layout_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_layout_mode");
    let block = 16 * 1024u64;
    g.throughput(Throughput::Bytes(block * 8));
    for (name, mode) in [
        ("both_plfs", LayoutMode::Both),
        ("partitioned_only", LayoutMode::PartitionedOnly),
        ("log_structured", LayoutMode::LogStructured),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let plfs = Plfs::new(Arc::new(MemBacking::new())).with_params(ContainerParams {
                num_hostdirs: 8,
                mode,
            });
            let fd = plfs
                .open("/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
                .unwrap();
            for pid in 1..8u64 {
                fd.add_ref(pid);
            }
            let data = vec![3u8; block as usize];
            let mut row = 0u64;
            b.iter(|| {
                for pid in 0..8u64 {
                    plfs.write(&fd, &data, (row * 8 + pid) * block, pid)
                        .unwrap();
                }
                row += 1;
                black_box(row)
            });
        });
    }
    g.finish();
}

/// Index write-buffer size: flush-per-write versus large buffering.
fn bench_index_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_index_buffer");
    for entries in [1usize, 64, 4096] {
        g.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let plfs = Plfs::new(Arc::new(MemBacking::new())).with_index_buffer(entries);
                let fd = plfs
                    .open("/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
                    .unwrap();
                let data = [5u8; 512];
                let mut off = 0u64;
                b.iter(|| {
                    plfs.write(&fd, &data, off, 0).unwrap();
                    off += 512;
                });
            },
        );
    }
    g.finish();
}

/// Hostdir spreading at the Figure 5 collapse point: the paper's proposed
/// mitigation knob, swept on the simulator.
fn bench_hostdir_sweep(c: &mut Criterion) {
    let platform = presets::sierra();
    let mut g = c.benchmark_group("ablate_hostdirs_flash_1536");
    g.sample_size(10);
    for hostdirs in [1u32, 32, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(hostdirs),
            &hostdirs,
            |b, &hd| {
                let mut cfg = FlashConfig::paper(1536);
                cfg.num_hostdirs = hd;
                b.iter(|| black_box(flash_io::run(&platform, &cfg, Method::Ldplfs).unwrap()));
            },
        );
    }
    g.finish();
}

/// Backend spreading: one backend vs several, on the real container code.
fn bench_backend_spread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_backend_spread");
    for backends in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(backends), &backends, |b, &n| {
            let backing: Arc<dyn plfs::Backing> = if n == 1 {
                Arc::new(MemBacking::new())
            } else {
                let bs: Vec<Arc<dyn plfs::Backing>> =
                    (0..n).map(|_| Arc::new(MemBacking::new()) as _).collect();
                Arc::new(plfs::SpreadBacking::new(bs).unwrap())
            };
            let plfs = Plfs::new(backing);
            let fd = plfs
                .open("/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
                .unwrap();
            for pid in 1..8u64 {
                fd.add_ref(pid);
            }
            let data = [1u8; 4096];
            let mut row = 0u64;
            b.iter(|| {
                for pid in 0..8u64 {
                    plfs.write(&fd, &data, (row * 8 + pid) * 4096, pid).unwrap();
                }
                row += 1;
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_layout_modes,
    bench_index_buffer,
    bench_hostdir_sweep,
    bench_backend_spread
);
criterion_main!(benches);
