//! Micro-benchmarks of the PLFS substrate: index merge and resolution,
//! the log-structured write path, the reassembling read path, flatten.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plfs::{
    ContainerParams, GlobalIndex, IndexEntry, MemBacking, OpenFlags, Plfs, ReadConf, ReadFile,
    WriteConf,
};
use std::hint::black_box;
use std::sync::Arc;

fn entry(i: u64, stride: u64) -> IndexEntry {
    IndexEntry {
        logical_offset: (i * 7919) % (stride * 1024),
        length: stride,
        physical_offset: i * stride,
        dropping_id: (i % 16) as u32,
        timestamp: i + 1,
        pid: i % 8,
    }
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("index");
    for n in [1_000u64, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("merge_scattered", n), &n, |b, &n| {
            b.iter(|| {
                let mut idx = GlobalIndex::default();
                for i in 0..n {
                    idx.insert(entry(i, 64));
                }
                black_box(idx.segments())
            });
        });
        g.bench_with_input(BenchmarkId::new("merge_sequential", n), &n, |b, &n| {
            // Sequential appends coalesce into one segment: the fast path.
            b.iter(|| {
                let mut idx = GlobalIndex::default();
                for i in 0..n {
                    idx.insert(IndexEntry {
                        logical_offset: i * 64,
                        length: 64,
                        physical_offset: i * 64,
                        dropping_id: 0,
                        timestamp: i + 1,
                        pid: 0,
                    });
                }
                black_box(idx.segments())
            });
        });
    }
    // Resolution against a large merged index.
    let mut idx = GlobalIndex::default();
    for i in 0..100_000 {
        idx.insert(entry(i, 64));
    }
    g.bench_function("resolve_4k_of_100k_segments", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 4096) % idx.eof().max(1);
            black_box(idx.resolve(off, 4096))
        });
    });
    g.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_path");
    for size in [4096u64, 65_536, 1 << 20] {
        g.throughput(Throughput::Bytes(size));
        g.bench_with_input(BenchmarkId::new("plfs_write", size), &size, |b, &size| {
            let plfs = Plfs::new(Arc::new(MemBacking::new()));
            let fd = plfs
                .open("/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
                .unwrap();
            let data = vec![7u8; size as usize];
            let mut off = 0u64;
            b.iter(|| {
                plfs.write(&fd, &data, off, 0).unwrap();
                off += size;
            });
        });
    }
    g.finish();
}

/// PR 3 acceptance benchmark: `writers` threads racing a strided
/// checkpoint through one fd — the serial writer table (1 shard, no
/// buffer) vs the id-hashed shards with write-behind buffering — plus the
/// O(1) append fast path vs a size() probe per append.
fn bench_multi_writer(c: &mut Criterion) {
    let writers = 8usize;
    let rows = 64usize;
    let block = 4096usize;
    let volume = (writers * rows * block) as u64;
    let run = |conf: WriteConf| {
        let plfs = Plfs::new(Arc::new(MemBacking::new())).with_write_conf(conf);
        let fd = plfs
            .open("/w", OpenFlags::RDWR | OpenFlags::CREAT, 0)
            .unwrap();
        for p in 1..writers as u64 {
            fd.add_ref(p);
        }
        std::thread::scope(|s| {
            for w in 0..writers {
                let plfs = &plfs;
                let fd = fd.clone();
                s.spawn(move || {
                    let pid = w as u64;
                    let data = vec![w as u8; block];
                    for r in 0..rows {
                        plfs.write(&fd, &data, ((r * writers + w) * block) as u64, pid)
                            .unwrap();
                    }
                    plfs.sync(&fd, pid).unwrap();
                });
            }
        });
        black_box(fd.size().unwrap())
    };

    let mut g = c.benchmark_group("multi_writer");
    g.throughput(Throughput::Bytes(volume));
    g.bench_function("checkpoint_8_writers_serial", |b| {
        b.iter(|| run(WriteConf::serial()));
    });
    g.bench_function("checkpoint_8_writers_sharded", |b| {
        b.iter(|| run(WriteConf::default().with_data_buffer_bytes(64 << 10)));
    });

    // Append latency: atomic-EOF fast path, no index merge per append.
    let plfs = Plfs::new(Arc::new(MemBacking::new()));
    let fd = plfs
        .open("/a", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    let chunk = vec![7u8; 64];
    g.throughput(Throughput::Bytes(64));
    g.bench_function("append_fastpath_64b", |b| {
        b.iter(|| black_box(fd.append(&chunk, 0).unwrap()));
    });
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path");
    // Container written by 16 interleaved writers, read back sequentially.
    let plfs = Plfs::new(Arc::new(MemBacking::new())).with_params(ContainerParams {
        num_hostdirs: 8,
        mode: plfs::LayoutMode::Both,
    });
    let fd = plfs
        .open("/f", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    let block = 64 * 1024u64;
    for pid in 0..16u64 {
        fd.add_ref(pid);
        let data = vec![pid as u8; block as usize];
        for row in 0..32u64 {
            plfs.write(&fd, &data, (row * 16 + pid) * block, pid)
                .unwrap();
        }
    }
    let total = 16 * 32 * block;
    g.throughput(Throughput::Bytes(block));
    g.bench_function("pread_64k_interleaved_16_writers", |b| {
        let mut buf = vec![0u8; block as usize];
        let mut off = 0u64;
        b.iter(|| {
            let n = plfs.read(&fd, &mut buf, off).unwrap();
            off = (off + block) % total;
            black_box(n)
        });
    });
    g.finish();
}

/// Write a strided container with `droppings` writer pids, `rows` blocks
/// each, `block` bytes per write — the N-to-1 checkpoint shape whose
/// read-open the parallel path targets.
fn strided_container(
    droppings: usize,
    rows: usize,
    block: usize,
) -> (Arc<MemBacking>, &'static str) {
    let backing = Arc::new(MemBacking::new());
    let plfs = Plfs::new(backing.clone()).with_params(ContainerParams {
        num_hostdirs: 16,
        mode: plfs::LayoutMode::Both,
    });
    let fd = plfs
        .open("/c", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    for p in 0..droppings as u64 {
        fd.add_ref(p);
        let data = vec![p as u8; block];
        for r in 0..rows as u64 {
            plfs.write(&fd, &data, (r * droppings as u64 + p) * block as u64, p)
                .unwrap();
        }
    }
    for p in 0..droppings as u64 {
        let _ = plfs.close(&fd, p);
    }
    plfs.close(&fd, 0).unwrap();
    (backing, "/c")
}

/// The acceptance benchmark: serial vs parallel open of a 256-dropping
/// container (open = fetch + decode every index dropping and build the
/// global index), plus the fan-out vs serial large pread.
fn bench_open_path(c: &mut Criterion) {
    let droppings = 256usize;
    let rows = 256usize;
    let block = 512usize;
    let (backing, path) = strided_container(droppings, rows, block);
    let par_conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    };

    let mut g = c.benchmark_group("open_path");
    g.bench_function("serial_open_256_droppings", |b| {
        b.iter(|| black_box(ReadFile::open(backing.as_ref(), path).unwrap().eof()));
    });
    g.bench_function("parallel_open_256_droppings", |b| {
        b.iter(|| {
            black_box(
                ReadFile::open_with(backing.as_ref(), path, par_conf)
                    .unwrap()
                    .eof(),
            )
        });
    });

    // Large-read fan-out: one pread spanning many droppings, serial loop
    // vs threshold-gated fan-out through the sharded handle cache.
    let serial_rf = ReadFile::open(backing.as_ref(), path).unwrap();
    let fanout_rf = ReadFile::open_with(
        backing.as_ref(),
        path,
        par_conf.with_fanout_threshold(64 * 1024),
    )
    .unwrap();
    let read = 4 << 20usize;
    let total = (droppings * rows * block) as u64;
    let mut buf = vec![0u8; read];
    g.throughput(Throughput::Bytes(read as u64));
    g.bench_function("pread_4m_serial", |b| {
        let mut off = 0u64;
        b.iter(|| {
            let n = serial_rf.pread(backing.as_ref(), &mut buf, off).unwrap();
            off = (off + read as u64) % (total - read as u64);
            black_box(n)
        });
    });
    g.bench_function("pread_4m_fanout", |b| {
        let mut off = 0u64;
        b.iter(|| {
            let n = fanout_rf
                .pread_auto(backing.as_ref(), &mut buf, off)
                .unwrap();
            off = (off + read as u64) % (total - read as u64);
            black_box(n)
        });
    });
    g.finish();
}

fn bench_flatten(c: &mut Criterion) {
    let backing = Arc::new(MemBacking::new());
    let plfs = Plfs::new(backing.clone());
    let fd = plfs
        .open("/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0)
        .unwrap();
    for pid in 0..8u64 {
        fd.add_ref(pid);
        plfs.write(&fd, &vec![pid as u8; 128 * 1024], pid * 128 * 1024, pid)
            .unwrap();
        plfs.close(&fd, pid).unwrap();
    }
    plfs.close(&fd, 0).unwrap();
    let mut g = c.benchmark_group("flatten");
    g.throughput(Throughput::Bytes(8 * 128 * 1024));
    g.bench_function("flatten_1mb_8_droppings", |b| {
        b.iter(|| black_box(plfs::flatten::flatten_to_vec(backing.as_ref(), "/f").unwrap()));
    });
    g.finish();
}

fn bench_pattern_compression(c: &mut Criterion) {
    use plfs::index::encode_compressed;
    let mut g = c.benchmark_group("index_compression");
    // The BT shape: thousands of strided entries.
    let strided: Vec<IndexEntry> = (0..10_000u64)
        .map(|i| IndexEntry {
            logical_offset: i * 4096,
            length: 1024,
            physical_offset: i * 1024,
            dropping_id: 0,
            timestamp: i + 1,
            pid: 1,
        })
        .collect();
    g.bench_function("encode_10k_strided", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            black_box(encode_compressed(&strided, 3, &mut out))
        });
    });
    // Irregular entries: worst case, plain records.
    let irregular: Vec<IndexEntry> = (0..10_000u64)
        .map(|i| IndexEntry {
            logical_offset: (i * 7919) % 1_000_000,
            length: 100 + (i % 97),
            physical_offset: i * 1200,
            dropping_id: 0,
            timestamp: i + 1,
            pid: 1,
        })
        .collect();
    g.bench_function("encode_10k_irregular", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            black_box(encode_compressed(&irregular, 3, &mut out))
        });
    });
    // Decode (expansion) of the compressed strided batch.
    let mut compressed = Vec::new();
    encode_compressed(&strided, 3, &mut compressed);
    g.bench_function("decode_compressed_strided", |b| {
        b.iter(|| black_box(IndexEntry::decode_all(&compressed).unwrap()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_index,
    bench_write_path,
    bench_multi_writer,
    bench_read_path,
    bench_open_path,
    bench_flatten,
    bench_pattern_compression
);
criterion_main!(benches);
