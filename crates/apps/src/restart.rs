//! Checkpoint–restart: write a checkpoint with N ranks, read it back with M.
//!
//! The paper's §II (citing Polte et al., PDSW'09 — "…And Eat It Too")
//! claims PLFS's partitioning *increases* read bandwidth "when the data is
//! being read back on the same number of nodes used to write the file",
//! while the log-structure alone would hurt reads. This workload measures
//! exactly that: an N-writer checkpoint restarted by M readers, on both the
//! simulator (bandwidth shapes) and — in the crate tests — the real
//! container code (byte correctness for N ≠ M re-decomposition).

use crate::result::{BenchPoint, IoTimer};
use mpiio::{Access, Job, Method, MpiFile, MpiInfo, RankIo};
use simfs::{Platform, SimFs, SimResult};

/// Configuration of one checkpoint–restart run.
#[derive(Debug, Clone, Copy)]
pub struct RestartConfig {
    /// Ranks that wrote the checkpoint.
    pub writers: usize,
    /// Ranks that read it back.
    pub readers: usize,
    /// Processes per node (both phases).
    pub ppn: usize,
    /// Bytes per writer.
    pub bytes_per_writer: u64,
    /// PLFS hostdirs.
    pub num_hostdirs: u32,
}

impl RestartConfig {
    /// Total checkpoint bytes.
    pub fn total(&self) -> u64 {
        self.bytes_per_writer * self.writers as u64
    }
}

/// Run the restart *read* phase (the checkpoint write is set up untimed)
/// and report read bandwidth.
pub fn run_read(platform: &Platform, cfg: &RestartConfig, method: Method) -> SimResult<BenchPoint> {
    let mut fs = SimFs::new(platform.clone());

    // Phase 1 (untimed): N writers produce the checkpoint collectively.
    let mut wjob = Job::new(cfg.writers, cfg.ppn);
    let mut file = MpiFile::open(
        &mut fs,
        &mut wjob,
        "/restart.ckpt",
        true,
        method,
        MpiInfo::default(),
        cfg.num_hostdirs,
    )?;
    let ios: Vec<RankIo> = (0..cfg.writers)
        .map(|r| RankIo {
            offset: r as u64 * cfg.bytes_per_writer,
            len: cfg.bytes_per_writer,
        })
        .collect();
    file.write_at_all(&mut fs, &mut wjob, &ios)?;
    file.close(&mut fs, &mut wjob)?;

    // Phase 2 (timed): M readers re-decompose the same bytes.
    let mut rjob = Job::new(cfg.readers, cfg.ppn);
    let mut timer = IoTimer::new(cfg.readers);
    let mut file = MpiFile::open(
        &mut fs,
        &mut rjob,
        "/restart.ckpt",
        false,
        method,
        MpiInfo::default(),
        cfg.num_hostdirs,
    )?;
    let per_reader = cfg.total() / cfg.readers as u64;
    for r in 0..cfg.readers {
        let t0 = rjob.time(r);
        let c = file.read_at(
            &mut fs,
            &mut rjob,
            r,
            r as u64 * per_reader,
            per_reader,
            Access::Contiguous,
        )?;
        timer.add(r, t0, c);
    }
    file.close(&mut fs, &mut rjob)?;

    Ok(BenchPoint {
        method: method.label().to_string(),
        procs: cfg.readers,
        nodes: cfg.readers.div_ceil(cfg.ppn),
        bytes: cfg.total(),
        seconds: timer.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::presets;

    fn cfg(writers: usize, readers: usize) -> RestartConfig {
        RestartConfig {
            writers,
            readers,
            ppn: 12,
            bytes_per_writer: 16 << 20,
            num_hostdirs: 16,
        }
    }

    #[test]
    fn same_n_restart_favors_plfs() {
        // §II: PLFS read-back on the same decomposition beats the shared
        // file (per-dropping streams, no seek interference).
        let p = presets::sierra();
        let plfs = run_read(&p, &cfg(48, 48), Method::Ldplfs).unwrap();
        let posix = run_read(&p, &cfg(48, 48), Method::MpiIo).unwrap();
        assert!(
            plfs.bandwidth_mbs() > posix.bandwidth_mbs(),
            "PLFS restart {} <= MPI-IO {}",
            plfs.bandwidth_mbs(),
            posix.bandwidth_mbs()
        );
    }

    #[test]
    fn restart_runs_at_other_decompositions() {
        let p = presets::sierra();
        for readers in [24usize, 48, 96] {
            let b = run_read(&p, &cfg(48, readers), Method::Ldplfs).unwrap();
            assert!(b.bandwidth_mbs().is_finite() && b.bandwidth_mbs() > 0.0);
            assert_eq!(b.bytes, 48 * (16 << 20));
        }
    }

    /// The correctness half, on the *real* container code: a checkpoint
    /// written by N pids reads back byte-identical under any M-way
    /// re-decomposition (the global index hides the original layout).
    #[test]
    fn real_container_redecomposes_correctly() {
        use plfs::{MemBacking, OpenFlags, Plfs};
        use std::sync::Arc;
        let plfs = Plfs::new(Arc::new(MemBacking::new()));
        let writers = 6u64;
        let block = 1000u64;
        let fd = plfs
            .open("/ckpt", OpenFlags::RDWR | OpenFlags::CREAT, 0)
            .unwrap();
        for w in 0..writers {
            fd.add_ref(w);
            plfs.write(&fd, &vec![w as u8 + 1; block as usize], w * block, w)
                .unwrap();
        }
        for w in 0..writers {
            let _ = plfs.close(&fd, w);
        }
        plfs.close(&fd, 0).unwrap();

        // Re-read with 4 "ranks" (uneven split of 6000 bytes).
        let total = writers * block;
        let readers = 4u64;
        let fd = plfs.open("/ckpt", OpenFlags::RDONLY, 99).unwrap();
        let mut reassembled = vec![0u8; total as usize];
        for r in 0..readers {
            let start = r * total / readers;
            let end = (r + 1) * total / readers;
            let mut buf = vec![0u8; (end - start) as usize];
            let n = plfs.read(&fd, &mut buf, start).unwrap();
            assert_eq!(n as u64, end - start);
            reassembled[start as usize..end as usize].copy_from_slice(&buf);
        }
        for w in 0..writers as usize {
            assert!(
                reassembled[w * 1000..(w + 1) * 1000]
                    .iter()
                    .all(|&b| b == w as u8 + 1),
                "writer {w}'s region intact under re-decomposition"
            );
        }
    }
}
