//! UNIX tools over the POSIX layer (paper §III.D, Table II).
//!
//! The paper's point: because LDPLFS interposes at the POSIX level,
//! ordinary serial tools work on PLFS containers unmodified. Here are
//! faithful reimplementations of the four tools the paper times — written
//! against [`PosixLayer`], so the *same code* runs on plain files (via
//! `RealPosix`) and on containers (via the `LdPlfs` shim), exactly the
//! comparison of Table II.
//!
//! [`sim`] contains the timing model that regenerates Table II at the
//! paper's 4 GB scale on the simulated login node.

use ldplfs::{CFile, Errno, PosixLayer, PosixResult, Whence};
use std::sync::Arc;

/// stdio buffer multiple used by the tools (matches GNU coreutils' 128 KiB
/// advice for bulk copies).
pub const TOOL_BUF: usize = 128 << 10;

/// `cp src dst`: byte-faithful copy. Returns bytes copied.
pub fn cp(layer: &Arc<dyn PosixLayer>, src: &str, dst: &str) -> PosixResult<u64> {
    let mut from = CFile::open(layer.clone(), src, "r")?;
    let mut to = CFile::open(layer.clone(), dst, "w")?;
    let mut buf = vec![0u8; TOOL_BUF];
    let mut total = 0u64;
    loop {
        let n = from.read(&mut buf)?;
        if n == 0 {
            break;
        }
        to.write(&buf[..n])?;
        total += n as u64;
    }
    to.close()?;
    from.close()?;
    Ok(total)
}

/// `cat path` into a sink; returns bytes read (output is discarded, the
/// benchmark's `> /dev/null`).
pub fn cat(layer: &Arc<dyn PosixLayer>, path: &str) -> PosixResult<u64> {
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut buf = vec![0u8; TOOL_BUF];
    let mut total = 0u64;
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        total += n as u64;
    }
    f.close()?;
    Ok(total)
}

/// `grep pattern path`: count lines containing the byte pattern.
pub fn grep(layer: &Arc<dyn PosixLayer>, pattern: &[u8], path: &str) -> PosixResult<u64> {
    if pattern.is_empty() {
        return Err(Errno::EINVAL);
    }
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut line = Vec::new();
    let mut hits = 0u64;
    while f.read_line(&mut line)? {
        if contains(&line, pattern) {
            hits += 1;
        }
    }
    f.close()?;
    Ok(hits)
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// `md5sum path`: digest of the file contents.
pub fn md5sum(layer: &Arc<dyn PosixLayer>, path: &str) -> PosixResult<[u8; 16]> {
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut buf = vec![0u8; TOOL_BUF];
    let mut h = crate::md5::Md5::new();
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        h.update(&buf[..n]);
    }
    f.close()?;
    Ok(h.finalize())
}

/// `wc -c`-style size via seek (cheap sanity tool; exercises `lseek` END).
pub fn file_size(layer: &Arc<dyn PosixLayer>, path: &str) -> PosixResult<u64> {
    let fd = layer.open(path, ldplfs::OpenFlags::RDONLY, 0)?;
    let size = layer.lseek(fd, 0, Whence::End)?;
    layer.close(fd)?;
    Ok(size)
}

/// `wc`: (lines, words, bytes).
pub fn wc(layer: &Arc<dyn PosixLayer>, path: &str) -> PosixResult<(u64, u64, u64)> {
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut buf = vec![0u8; TOOL_BUF];
    let (mut lines, mut words, mut bytes) = (0u64, 0u64, 0u64);
    let mut in_word = false;
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        bytes += n as u64;
        for &b in &buf[..n] {
            if b == b'\n' {
                lines += 1;
            }
            if b.is_ascii_whitespace() {
                in_word = false;
            } else if !in_word {
                in_word = true;
                words += 1;
            }
        }
    }
    f.close()?;
    Ok((lines, words, bytes))
}

/// `head -c n`: the first `n` bytes.
pub fn head(layer: &Arc<dyn PosixLayer>, path: &str, n: usize) -> PosixResult<Vec<u8>> {
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut out = vec![0u8; n];
    let mut got = 0;
    while got < n {
        let r = f.read(&mut out[got..])?;
        if r == 0 {
            break;
        }
        got += r;
    }
    out.truncate(got);
    f.close()?;
    Ok(out)
}

/// `tail -c n`: the last `n` bytes, found via `lseek(END)` — the access
/// pattern that most stresses LDPLFS's logical-EOF handling.
pub fn tail(layer: &Arc<dyn PosixLayer>, path: &str, n: u64) -> PosixResult<Vec<u8>> {
    let fd = layer.open(path, ldplfs::OpenFlags::RDONLY, 0)?;
    let size = layer.lseek(fd, 0, Whence::End)?;
    let start = size.saturating_sub(n);
    layer.lseek(fd, start as i64, Whence::Set)?;
    let mut out = vec![0u8; (size - start) as usize];
    let mut got = 0;
    while got < out.len() {
        let r = layer.read(fd, &mut out[got..])?;
        if r == 0 {
            break;
        }
        got += r;
    }
    out.truncate(got);
    layer.close(fd)?;
    Ok(out)
}

/// `cmp`: offset of the first differing byte, or `None` if identical
/// (files of different length differ at the shorter one's end).
pub fn cmp(layer: &Arc<dyn PosixLayer>, a: &str, b: &str) -> PosixResult<Option<u64>> {
    let mut fa = CFile::open(layer.clone(), a, "r")?;
    let mut fb = CFile::open(layer.clone(), b, "r")?;
    let mut ba = vec![0u8; TOOL_BUF];
    let mut bb = vec![0u8; TOOL_BUF];
    let mut off = 0u64;
    loop {
        let na = fa.read(&mut ba)?;
        let mut nb = 0;
        while nb < na {
            let r = fb.read(&mut bb[nb..na])?;
            if r == 0 {
                break;
            }
            nb += r;
        }
        if na == 0 {
            // a exhausted: identical iff b is too.
            let extra = fb.read(&mut bb[..1])?;
            return Ok(if extra == 0 { None } else { Some(off) });
        }
        if nb < na {
            return Ok(Some(off + nb as u64));
        }
        if let Some(i) = ba[..na].iter().zip(&bb[..na]).position(|(x, y)| x != y) {
            return Ok(Some(off + i as u64));
        }
        off += na as u64;
    }
}

/// The Table II timing model on the simulated login node.
pub mod sim {
    use simfs::{FileId, Platform, SimFs, SimResult};

    /// Which file layout a tool operates on.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FileKind {
        /// A PLFS container previously written by `droppings` processes.
        PlfsContainer {
            /// Dropping count (the paper's 4 GB container came from a
            /// parallel job).
            droppings: usize,
        },
        /// An ordinary flat file.
        Standard,
    }

    /// The tools of Table II.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Tool {
        /// `cp` reading this file into a standard file.
        CpRead,
        /// `cp` writing this file from a standard file.
        CpWrite,
        /// `cat > /dev/null`.
        Cat,
        /// `grep` (CPU-bound scan).
        Grep,
        /// `md5sum` (CPU-bound digest).
        Md5,
    }

    impl Tool {
        /// CPU cost per byte (s) on the login node, calibrated from the
        /// paper's CPU-bound rows (grep ≈ 31 MB/s, md5sum ≈ 150 MB/s).
        pub fn cpu_per_byte(self) -> f64 {
            match self {
                Tool::Grep => 1.0 / 31.0e6,
                Tool::Md5 => 1.0 / 151.0e6,
                Tool::CpRead | Tool::CpWrite | Tool::Cat => 1.0 / 2.0e9,
            }
        }

        /// All five rows of Table II.
        pub const ALL: [Tool; 5] = [
            Tool::CpRead,
            Tool::CpWrite,
            Tool::Cat,
            Tool::Grep,
            Tool::Md5,
        ];

        /// Row label as in Table II.
        pub fn label(self) -> &'static str {
            match self {
                Tool::CpRead => "cp (read)",
                Tool::CpWrite => "cp (write)",
                Tool::Cat => "cat",
                Tool::Grep => "grep",
                Tool::Md5 => "md5sum",
            }
        }
    }

    /// Prepare the on-FS file(s) a serial tool will touch, without timing.
    fn prepare(fs: &mut SimFs, kind: FileKind, size: u64) -> SimResult<Vec<(FileId, u64)>> {
        match kind {
            FileKind::Standard => {
                let (_, id) = fs.create(0.0, "/flat.dat", None)?;
                Ok(vec![(id, size)])
            }
            FileKind::PlfsContainer { droppings } => {
                fs.mkdir(0.0, "/container")?;
                let per = size / droppings as u64;
                let mut out = Vec::new();
                for d in 0..droppings {
                    let (_, id) =
                        fs.create(0.0, &format!("/container/dropping.data.{d}"), Some(1))?;
                    out.push((id, per));
                }
                Ok(out)
            }
        }
    }

    /// Seconds for one tool over one file layout at `size` bytes.
    ///
    /// Model: a serial tool issues 128 KiB requests. Reads benefit from
    /// kernel readahead (two outstanding requests, so link and server
    /// service overlap). `cp`'s read and write streams are decoupled by
    /// the page cache, so each side is timed on its own queue state and
    /// the tool finishes at the slower of the two; writes are synchronous
    /// per request (no write delegation on the shared login volume), which
    /// is what keeps the paper's cp rows near 36 MB/s against ~160 MB/s
    /// reads.
    pub fn tool_time(platform: &Platform, tool: Tool, kind: FileKind, size: u64) -> SimResult<f64> {
        const CHUNK: u64 = 128 << 10;
        const READAHEAD: usize = 2;

        // The measured file(s).
        let mut fs = SimFs::new(platform.clone());
        let pieces = prepare(&mut fs, kind, size)?;

        // Read side: which pieces are read, and on which fs instance.
        // For cp (write into the measured file) the read source is a
        // standard flat file of the same size.
        let read_pieces: Vec<(FileId, u64)> = if tool == Tool::CpWrite {
            let (_, src) = fs.create(0.0, "/cp.src", None)?;
            vec![(src, size)]
        } else {
            pieces.clone()
        };

        let mut window = std::collections::VecDeque::with_capacity(READAHEAD);
        window.push_back(0.0f64);
        let mut last_read = 0.0f64;
        let mut cpu_backlog = 0.0f64;
        let mut read_completions = Vec::new();
        for &(fid, bytes) in &read_pieces {
            let mut off = 0u64;
            while off < bytes {
                let n = CHUNK.min(bytes - off);
                let issue = if window.len() >= READAHEAD {
                    window.pop_front().unwrap()
                } else {
                    *window.front().unwrap_or(&0.0)
                };
                let r = fs.read(issue, 0, fid, off, n)?;
                window.push_back(r);
                last_read = last_read.max(r);
                read_completions.push((off, n, r));
                cpu_backlog += n as f64 * tool.cpu_per_byte();
                off += n;
            }
        }

        // Write side (cp only): synchronous chained writes on a fresh
        // queue state (the page cache decouples the two streams); each
        // write can start no earlier than its data was read.
        let mut last_write = 0.0f64;
        if tool == Tool::CpRead || tool == Tool::CpWrite {
            let mut wfs = SimFs::new(platform.clone());
            let targets: Vec<(FileId, u64)> = if tool == Tool::CpRead {
                let (_, dst) = wfs.create(0.0, "/cp.out", None)?;
                wfs.add_writer(dst)?;
                vec![(dst, size)]
            } else {
                // cp into the measured layout: recreate it on the write fs.
                let t = prepare(&mut wfs, kind, size)?;
                for &(fid, _) in &t {
                    wfs.add_writer(fid)?;
                }
                t
            };
            let mut t = 0.0f64;
            let mut ri = 0usize;
            for &(fid, bytes) in &targets {
                let mut off = 0u64;
                while off < bytes {
                    let n = CHUNK.min(bytes - off);
                    let data_ready = read_completions.get(ri).map(|&(_, _, r)| r).unwrap_or(t);
                    ri += 1;
                    t = wfs.write(t.max(data_ready), 0, fid, off, n)?;
                    last_write = last_write.max(t);
                    off += n;
                }
            }
        }

        Ok(last_read.max(last_write).max(cpu_backlog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::hex;
    use ldplfs::{LdPlfsBuilder, RealPosix};
    use plfs::{MemBacking, Plfs};

    fn shim(name: &str) -> Arc<dyn PosixLayer> {
        let dir = std::env::temp_dir().join(format!("apps-tools-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let under = Arc::new(RealPosix::rooted(dir).unwrap());
        Arc::new(
            LdPlfsBuilder::new(under)
                .mount("/plfs", Plfs::new(Arc::new(MemBacking::new())))
                .build()
                .unwrap(),
        )
    }

    fn write_file(layer: &Arc<dyn PosixLayer>, path: &str, data: &[u8]) {
        let mut f = CFile::open(layer.clone(), path, "w").unwrap();
        f.write(data).unwrap();
        f.close().unwrap();
    }

    #[test]
    fn cp_between_plfs_and_plain() {
        let l = shim("cp");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 256) as u8).collect();
        write_file(&l, "/plfs/src", &data);
        // PLFS -> plain.
        assert_eq!(cp(&l, "/plfs/src", "/out.dat").unwrap(), data.len() as u64);
        assert_eq!(md5sum(&l, "/out.dat").unwrap(), crate::md5::md5(&data));
        // plain -> PLFS.
        cp(&l, "/out.dat", "/plfs/back").unwrap();
        assert_eq!(md5sum(&l, "/plfs/back").unwrap(), crate::md5::md5(&data));
    }

    #[test]
    fn cat_counts_all_bytes() {
        let l = shim("cat");
        write_file(&l, "/plfs/f", &vec![9u8; 300_001]);
        assert_eq!(cat(&l, "/plfs/f").unwrap(), 300_001);
    }

    #[test]
    fn grep_finds_lines_in_container() {
        let l = shim("grep");
        let text = b"error: one\nok\nanother error here\nfin\n";
        write_file(&l, "/plfs/log", text);
        assert_eq!(grep(&l, b"error", "/plfs/log").unwrap(), 2);
        assert_eq!(grep(&l, b"absent", "/plfs/log").unwrap(), 0);
        assert_eq!(grep(&l, b"", "/plfs/log"), Err(Errno::EINVAL));
    }

    #[test]
    fn md5_identical_across_layouts() {
        let l = shim("md5");
        let data: Vec<u8> = (0..77_777u32).map(|i| (i * 31 % 256) as u8).collect();
        write_file(&l, "/plfs/a", &data);
        write_file(&l, "/plain", &data);
        let a = md5sum(&l, "/plfs/a").unwrap();
        let b = md5sum(&l, "/plain").unwrap();
        assert_eq!(hex(&a), hex(&b), "same bytes, same digest, either layout");
    }

    #[test]
    fn file_size_via_lseek_end() {
        let l = shim("size");
        write_file(&l, "/plfs/f", &[1u8; 4242]);
        assert_eq!(file_size(&l, "/plfs/f").unwrap(), 4242);
    }

    #[test]
    fn wc_counts_match_content() {
        let l = shim("wc");
        write_file(&l, "/plfs/t", b"one two\nthree\n\nfour five six\n");
        let (lines, words, bytes) = wc(&l, "/plfs/t").unwrap();
        assert_eq!(lines, 4);
        assert_eq!(words, 6);
        assert_eq!(bytes, 29);
    }

    #[test]
    fn head_and_tail_slice_correctly() {
        let l = shim("ht");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        write_file(&l, "/plfs/d", &data);
        assert_eq!(head(&l, "/plfs/d", 100).unwrap(), &data[..100]);
        assert_eq!(tail(&l, "/plfs/d", 100).unwrap(), &data[data.len() - 100..]);
        // Requests larger than the file clamp.
        assert_eq!(head(&l, "/plfs/d", 1 << 20).unwrap(), data);
        assert_eq!(tail(&l, "/plfs/d", 1 << 20).unwrap(), data);
    }

    #[test]
    fn cmp_finds_first_difference() {
        let l = shim("cmp");
        write_file(&l, "/plfs/a", b"identical prefix XX tail");
        write_file(&l, "/plfs/b", b"identical prefix YY tail");
        write_file(&l, "/same", b"identical prefix XX tail");
        assert_eq!(cmp(&l, "/plfs/a", "/plfs/b").unwrap(), Some(17));
        assert_eq!(cmp(&l, "/plfs/a", "/same").unwrap(), None);
        write_file(&l, "/short", b"identical");
        assert_eq!(cmp(&l, "/plfs/a", "/short").unwrap(), Some(9));
    }

    #[test]
    fn sim_table2_shapes() {
        use super::sim::*;
        let p = simfs::presets::login_node();
        let size = 256 << 20; // scaled-down for test speed; harness uses 4 GB
        let plfs = FileKind::PlfsContainer { droppings: 16 };
        let std_ = FileKind::Standard;
        // cat: roughly equal either way (within 15%).
        let cat_p = tool_time(&p, Tool::Cat, plfs, size).unwrap();
        let cat_s = tool_time(&p, Tool::Cat, std_, size).unwrap();
        assert!((cat_p / cat_s - 1.0).abs() < 0.15, "{cat_p} vs {cat_s}");
        // grep & md5sum: CPU-bound, so layout-independent (within 5%).
        let g_p = tool_time(&p, Tool::Grep, plfs, size).unwrap();
        let g_s = tool_time(&p, Tool::Grep, std_, size).unwrap();
        assert!((g_p / g_s - 1.0).abs() < 0.05);
        // cp read: PLFS no slower than standard (the paper's small win).
        let cp_p = tool_time(&p, Tool::CpRead, plfs, size).unwrap();
        let cp_s = tool_time(&p, Tool::CpRead, std_, size).unwrap();
        assert!(cp_p <= cp_s * 1.05, "{cp_p} vs {cp_s}");
        // cp is write-bound, so much slower than cat.
        assert!(cp_s > cat_s * 1.5);
    }
}
