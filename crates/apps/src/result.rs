//! Benchmark result records shared by all workloads.

/// One measured point: a method at a scale.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// I/O path label ("MPI-IO", "FUSE", "ROMIO", "LDPLFS").
    pub method: String,
    /// Total processes.
    pub procs: usize,
    /// Occupied nodes.
    pub nodes: usize,
    /// Bytes moved by the measured phase.
    pub bytes: u64,
    /// Seconds attributed to I/O (the benchmark's own accounting).
    pub seconds: f64,
}

impl BenchPoint {
    /// Achieved bandwidth in MB/s (decimal megabytes, like the paper).
    pub fn bandwidth_mbs(&self) -> f64 {
        if self.seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.bytes as f64 / self.seconds / 1.0e6
    }
}

/// Accumulates per-rank I/O time the way the mini-applications report it:
/// each rank sums the durations of its own I/O calls; the job's I/O time is
/// the slowest rank; bandwidth is total bytes over that.
#[derive(Debug, Clone, Default)]
pub struct IoTimer {
    per_rank: Vec<f64>,
}

impl IoTimer {
    /// Timer for `ranks` processes.
    pub fn new(ranks: usize) -> IoTimer {
        IoTimer {
            per_rank: vec![0.0; ranks],
        }
    }

    /// Charge `rank` with an I/O interval.
    pub fn add(&mut self, rank: usize, start: f64, end: f64) {
        debug_assert!(end >= start);
        self.per_rank[rank] += end - start;
    }

    /// Charge every rank with the same collective interval.
    pub fn add_all(&mut self, start: f64, end: f64) {
        for v in &mut self.per_rank {
            *v += end - start;
        }
    }

    /// The job's I/O time: the slowest rank.
    pub fn max(&self) -> f64 {
        self.per_rank.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_arithmetic() {
        let p = BenchPoint {
            method: "LDPLFS".into(),
            procs: 4,
            nodes: 2,
            bytes: 100_000_000,
            seconds: 2.0,
        };
        assert!((p.bandwidth_mbs() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn io_timer_takes_slowest_rank() {
        let mut t = IoTimer::new(3);
        t.add(0, 0.0, 1.0);
        t.add(1, 0.0, 3.0);
        t.add(1, 5.0, 6.0);
        t.add(2, 0.0, 0.5);
        assert!((t.max() - 4.0).abs() < 1e-12);
        t.add_all(0.0, 1.0);
        assert!((t.max() - 5.0).abs() < 1e-12);
    }
}
