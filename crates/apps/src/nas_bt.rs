//! The NAS BT I/O workload (paper §IV, Figure 4).
//!
//! Strong-scaled: the global problem is fixed per class and divided over
//! the processes; the solution is dumped in 20 write steps. Per-process
//! write sizes therefore shrink as the core count grows — the driver of the
//! paper's write-caching analysis:
//!
//! * class C (162³): 6.4 GB total → ~300 KB per process-step at 1,024 cores
//!   (absorbed by the client cache through PLFS);
//! * class D (408³): 136 GB total → ~7 MB per process-step at 1,024 cores
//!   (misses the cache) but <2 MB at 4,096 (absorbed again).
//!
//! Each process's cells are interleaved through the solution array, so the
//! shared-file path sees strided writes (sieving + locks); PLFS paths see
//! plain log appends.

use crate::result::{BenchPoint, IoTimer};
use mpiio::{Access, Job, Method, MpiFile, MpiInfo};
use simfs::{Platform, SimFs, SimResult};

/// NAS problem classes used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtClass {
    /// 162³ grid, 6.4 GB of I/O.
    C,
    /// 408³ grid, 136 GB of I/O.
    D,
}

impl BtClass {
    /// Grid points per dimension.
    pub fn grid(self) -> u64 {
        match self {
            BtClass::C => 162,
            BtClass::D => 408,
        }
    }

    /// Total bytes written during a run (paper §IV).
    pub fn total_bytes(self) -> u64 {
        match self {
            BtClass::C => 64 * (100 << 20),   // 6.4 GB
            BtClass::D => 136 * (1000 << 20), // 136 GB
        }
    }

    /// The paper's core-count sweep for this class.
    pub fn core_sweep(self) -> &'static [usize] {
        match self {
            BtClass::C => &[4, 16, 64, 256, 1024],
            BtClass::D => &[64, 256, 1024, 4096],
        }
    }

    /// Label ("C"/"D").
    pub fn label(self) -> &'static str {
        match self {
            BtClass::C => "C",
            BtClass::D => "D",
        }
    }
}

/// Number of solution dumps in a run.
pub const BT_WRITE_STEPS: u64 = 20;

/// Configuration of one BT run.
#[derive(Debug, Clone, Copy)]
pub struct BtConfig {
    /// Problem class.
    pub class: BtClass,
    /// Total processes (BT requires a square count; the paper uses powers
    /// of 4).
    pub procs: usize,
    /// Processes per node.
    pub ppn: usize,
    /// PLFS hostdirs.
    pub num_hostdirs: u32,
}

impl BtConfig {
    /// Paper configuration at a core count (12 cores per node on Sierra).
    pub fn paper(class: BtClass, procs: usize) -> BtConfig {
        BtConfig {
            class,
            procs,
            ppn: 12,
            num_hostdirs: 32,
        }
    }

    /// Bytes one process writes in one step.
    pub fn bytes_per_proc_step(&self) -> u64 {
        self.class.total_bytes() / BT_WRITE_STEPS / self.procs as u64
    }

    /// Occupied nodes.
    pub fn nodes(&self) -> usize {
        self.procs.div_ceil(self.ppn)
    }
}

/// Run BT's I/O phases; returns the write measurement: data over the
/// summed write-phase time plus the final close (the checkpoint is not
/// durable until the cached dirty data drains, and including it is what
/// keeps cached "bandwidths" finite).
pub fn run(platform: &Platform, cfg: &BtConfig, method: Method) -> SimResult<BenchPoint> {
    let mut fs = SimFs::new(platform.clone());
    let mut job = Job::new(cfg.procs, cfg.ppn);
    let mut timer = IoTimer::new(cfg.procs);

    let mut file = MpiFile::open(
        &mut fs,
        &mut job,
        "/btio.out",
        true,
        method,
        MpiInfo::default(),
        cfg.num_hostdirs,
    )?;

    let per_step = cfg.bytes_per_proc_step();
    let step_bytes = per_step * cfg.procs as u64;
    for step in 0..BT_WRITE_STEPS {
        for r in 0..cfg.procs {
            let t0 = job.time(r);
            // Rank r's cells from this step, interleaved through the
            // solution array region of the step.
            let offset = step * step_bytes + r as u64 * per_step;
            let c = file.write_at(&mut fs, &mut job, r, offset, per_step, Access::Strided)?;
            timer.add(r, t0, c);
        }
        // Solver phase between dumps synchronises the ranks.
        job.barrier();
    }
    let t0 = job.max_time();
    file.close(&mut fs, &mut job)?;
    timer.add_all(t0, job.max_time());

    Ok(BenchPoint {
        method: method.label().to_string(),
        procs: cfg.procs,
        nodes: cfg.nodes(),
        bytes: cfg.class.total_bytes(),
        seconds: timer.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::presets;

    #[test]
    fn per_proc_step_sizes_match_paper() {
        // ~300 KB per process-step for class C at 1,024 cores.
        let c = BtConfig::paper(BtClass::C, 1024);
        let kb = c.bytes_per_proc_step() as f64 / 1e3;
        assert!((250.0..400.0).contains(&kb), "{kb} KB");
        // ~7 MB at 1,024 cores class D.
        let d = BtConfig::paper(BtClass::D, 1024);
        let mb = d.bytes_per_proc_step() as f64 / 1e6;
        assert!((6.0..8.0).contains(&mb), "{mb} MB");
        // <2 MB at 4,096 cores class D; ~34 MB per process total.
        let d4 = BtConfig::paper(BtClass::D, 4096);
        assert!(d4.bytes_per_proc_step() < 2_000_000);
        let total_per_proc = d4.bytes_per_proc_step() * BT_WRITE_STEPS;
        assert!((30_000_000..40_000_000).contains(&total_per_proc));
    }

    #[test]
    fn class_c_small_scale_runs() {
        // Scaled-down class C so the unit test stays fast: 16 cores.
        let p = presets::sierra();
        let cfg = BtConfig::paper(BtClass::C, 16);
        let mpiio = run(&p, &cfg, Method::MpiIo).unwrap();
        let ldplfs = run(&p, &cfg, Method::Ldplfs).unwrap();
        assert!(mpiio.seconds > 0.0 && ldplfs.seconds > 0.0);
        assert!(
            ldplfs.bandwidth_mbs() > mpiio.bandwidth_mbs(),
            "PLFS should win BT: {} vs {}",
            ldplfs.bandwidth_mbs(),
            mpiio.bandwidth_mbs()
        );
    }

    #[test]
    fn small_writes_hit_cache_through_plfs() {
        let p = presets::sierra();
        // 256 cores class C: ~1.25 MB per proc-step, cacheable.
        let cfg = BtConfig::paper(BtClass::C, 256);
        let mut fs = SimFs::new(p.clone());
        let mut job = Job::new(cfg.procs, cfg.ppn);
        let mut file = MpiFile::open(
            &mut fs,
            &mut job,
            "/bt",
            true,
            Method::Romio,
            MpiInfo::default(),
            32,
        )
        .unwrap();
        for r in 0..cfg.procs {
            file.write_at(
                &mut fs,
                &mut job,
                r,
                r as u64 * cfg.bytes_per_proc_step(),
                cfg.bytes_per_proc_step(),
                Access::Strided,
            )
            .unwrap();
        }
        assert!(fs.stats().cache_hits > 0, "class C writes should cache");
    }

    #[test]
    fn sweeps_are_the_papers() {
        assert_eq!(BtClass::C.core_sweep(), &[4, 16, 64, 256, 1024]);
        assert_eq!(BtClass::D.core_sweep(), &[64, 256, 1024, 4096]);
    }
}
