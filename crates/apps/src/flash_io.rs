//! The FLASH-IO checkpoint workload (paper §IV, Figure 5).
//!
//! FLASH-IO recreates the checkpointing of the FLASH astrophysics code
//! through HDF5: every process holds a fixed 24³ local problem and writes
//! ~205 MB per checkpoint, so the run is *weak-scaled* — total output grows
//! with the core count. Variables are laid out dataset-by-dataset: for
//! unknown `v`, process `r` writes a contiguous slab at
//! `v·(procs·slab) + r·slab`, independently (HDF5 independent transfer
//! mode). Rank 0 additionally writes small dataset headers.
//!
//! Through PLFS every process creates its own dropping pair inside the
//! container — the metadata storm that collapses the dedicated Lustre MDS
//! at scale (Figure 5), while plain MPI-IO creates one file and climbs
//! slowly under shared-file locks.

use crate::result::{BenchPoint, IoTimer};
use mpiio::{Access, Job, Method, MpiFile, MpiInfo};
use simfs::{Platform, SimFs, SimResult};

/// Number of FLASH "unknowns" checkpointed (24 mesh variables).
pub const FLASH_NVARS: u64 = 24;
/// Bytes each process contributes per checkpoint (~205 MB, §IV).
pub const FLASH_BYTES_PER_PROC: u64 = 205 * 1_000_000;
/// HDF5 dataset header written by rank 0 before each variable.
pub const FLASH_HEADER_BYTES: u64 = 2048;

/// Configuration of one FLASH-IO run.
#[derive(Debug, Clone, Copy)]
pub struct FlashConfig {
    /// Total processes (the paper runs 12 per node, 1–256 nodes).
    pub procs: usize,
    /// Processes per node.
    pub ppn: usize,
    /// PLFS hostdirs.
    pub num_hostdirs: u32,
}

impl FlashConfig {
    /// Paper configuration at a core count.
    pub fn paper(procs: usize) -> FlashConfig {
        FlashConfig {
            procs,
            ppn: 12,
            num_hostdirs: 32,
        }
    }

    /// The paper's core sweep: 12 to 3,072 cores doubling by nodes.
    pub fn core_sweep() -> &'static [usize] {
        &[12, 24, 48, 96, 192, 384, 768, 1536, 3072]
    }

    /// Contiguous slab one process writes per variable.
    pub fn slab(&self) -> u64 {
        FLASH_BYTES_PER_PROC / FLASH_NVARS
    }

    /// Occupied nodes.
    pub fn nodes(&self) -> usize {
        self.procs.div_ceil(self.ppn)
    }
}

/// Run one FLASH-IO checkpoint; bandwidth is total bytes over the slowest
/// rank's summed I/O time, including open and close (checkpoint completion
/// is what FLASH times — this is why the MDS storm shows up).
pub fn run(platform: &Platform, cfg: &FlashConfig, method: Method) -> SimResult<BenchPoint> {
    let mut fs = SimFs::new(platform.clone());
    let mut job = Job::new(cfg.procs, cfg.ppn);
    let mut timer = IoTimer::new(cfg.procs);

    let t_open0 = job.max_time();
    let mut file = MpiFile::open(
        &mut fs,
        &mut job,
        "/flash_hdf5_chk_0001",
        true,
        method,
        MpiInfo::default(),
        cfg.num_hostdirs,
    )?;
    let t_open1 = job.max_time();
    timer.add_all(t_open0, t_open1);

    let slab = cfg.slab();
    let var_section = slab * cfg.procs as u64;
    for v in 0..FLASH_NVARS {
        let base = v * (var_section + FLASH_HEADER_BYTES);
        // Rank 0 writes the dataset header.
        {
            let t0 = job.time(0);
            let c = file.write_at(
                &mut fs,
                &mut job,
                0,
                base,
                FLASH_HEADER_BYTES,
                Access::Strided,
            )?;
            timer.add(0, t0, c);
        }
        // Every rank writes its contiguous slab, independently.
        for r in 0..cfg.procs {
            let t0 = job.time(r);
            let offset = base + FLASH_HEADER_BYTES + r as u64 * slab;
            let c = file.write_at(&mut fs, &mut job, r, offset, slab, Access::Contiguous)?;
            timer.add(r, t0, c);
        }
    }

    let t_close0 = job.max_time();
    file.close(&mut fs, &mut job)?;
    let t_close1 = job.max_time();
    timer.add_all(t_close0, t_close1);

    Ok(BenchPoint {
        method: method.label().to_string(),
        procs: cfg.procs,
        nodes: cfg.nodes(),
        bytes: FLASH_BYTES_PER_PROC * cfg.procs as u64,
        seconds: timer.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::presets;

    #[test]
    fn weak_scaling_grows_output() {
        let small = FlashConfig::paper(12);
        let big = FlashConfig::paper(24);
        assert_eq!(
            FLASH_BYTES_PER_PROC * 12,
            small.procs as u64 * FLASH_BYTES_PER_PROC
        );
        assert!(big.procs > small.procs);
        // ~8.5 MB slabs.
        let mb = small.slab() as f64 / 1e6;
        assert!((7.0..10.0).contains(&mb), "{mb}");
    }

    #[test]
    fn plfs_beats_mpiio_at_moderate_scale() {
        let p = presets::sierra();
        let cfg = FlashConfig::paper(24);
        let mpiio = run(&p, &cfg, Method::MpiIo).unwrap();
        let ldplfs = run(&p, &cfg, Method::Ldplfs).unwrap();
        assert!(
            ldplfs.bandwidth_mbs() > mpiio.bandwidth_mbs(),
            "{} vs {}",
            ldplfs.bandwidth_mbs(),
            mpiio.bandwidth_mbs()
        );
    }

    #[test]
    fn plfs_loads_the_mds_per_process() {
        let p = presets::sierra();
        let cfg = FlashConfig {
            procs: 24,
            ppn: 12,
            num_hostdirs: 8,
        };
        // Count metadata ops for PLFS vs plain MPI-IO.
        let mut fs = SimFs::new(p.clone());
        let mut job = Job::new(cfg.procs, cfg.ppn);
        let mut f = MpiFile::open(
            &mut fs,
            &mut job,
            "/c",
            true,
            Method::Romio,
            MpiInfo::default(),
            8,
        )
        .unwrap();
        for r in 0..cfg.procs {
            f.write_at(
                &mut fs,
                &mut job,
                r,
                r as u64 * 1024,
                1024,
                Access::Contiguous,
            )
            .unwrap();
        }
        let plfs_meta = fs.stats().meta_ops;

        let mut fs2 = SimFs::new(p.clone());
        let mut job2 = Job::new(cfg.procs, cfg.ppn);
        let mut f2 = MpiFile::open(
            &mut fs2,
            &mut job2,
            "/c",
            true,
            Method::MpiIo,
            MpiInfo::default(),
            8,
        )
        .unwrap();
        for r in 0..cfg.procs {
            f2.write_at(
                &mut fs2,
                &mut job2,
                r,
                r as u64 * 1024,
                1024,
                Access::Contiguous,
            )
            .unwrap();
        }
        let ufs_meta = fs2.stats().meta_ops;
        assert!(
            plfs_meta > ufs_meta + cfg.procs as u64,
            "PLFS must create per-process droppings: {plfs_meta} vs {ufs_meta}"
        );
    }
}
