//! An IOR-style parameterised I/O benchmark.
//!
//! IOR is the community's standard parallel I/O benchmark; the paper's
//! MPI-IO Test is one fixed point in IOR's parameter space. This generator
//! exposes the axes IOR sweeps — API (collective/independent), file layout
//! (shared / file-per-process), transfer size, block size, access order —
//! so the repo can explore beyond the paper's configurations (and the
//! harness can sanity-check the simulator against intuition: e.g.
//! file-per-process on POSIX should behave like PLFS's partitioning).

use crate::result::{BenchPoint, IoTimer};
use mpiio::{Access, Job, Method, MpiFile, MpiInfo, RankIo};
use simfs::{Platform, SimFs, SimResult};

/// How ranks address the file(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileLayout {
    /// All ranks share one file (N-to-1), segmented: rank r owns the
    /// contiguous segment `[r·blocks·xfer, (r+1)·blocks·xfer)`.
    SharedSegmented,
    /// All ranks share one file, strided: block `b` of rank `r` lands at
    /// `(b·ranks + r)·xfer`.
    SharedStrided,
    /// One file per process (N-to-N) — what PLFS builds transparently.
    FilePerProcess,
}

/// Independent or collective data calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiMode {
    /// `MPI_File_write_at` per rank.
    Independent,
    /// `MPI_File_write_at_all` (two-phase collective).
    Collective,
}

/// One IOR run description.
#[derive(Debug, Clone, Copy)]
pub struct IorConfig {
    /// Ranks.
    pub procs: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Transfer size per call (IOR `-t`).
    pub transfer: u64,
    /// Transfers per block (IOR `-b` = transfer × this).
    pub transfers_per_block: u64,
    /// File layout.
    pub layout: FileLayout,
    /// API mode.
    pub api: ApiMode,
    /// PLFS hostdirs for PLFS-backed methods.
    pub num_hostdirs: u32,
}

impl IorConfig {
    /// Bytes each rank moves.
    pub fn bytes_per_proc(&self) -> u64 {
        self.transfer * self.transfers_per_block
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_proc() * self.procs as u64
    }
}

/// Run the write phase of an IOR configuration. Bandwidth covers the write
/// calls plus the close (so cache-absorbed runs are bounded by the drain,
/// like a durable checkpoint).
pub fn run_write(platform: &Platform, cfg: &IorConfig, method: Method) -> SimResult<BenchPoint> {
    let mut fs = SimFs::new(platform.clone());
    let mut job = Job::new(cfg.procs, cfg.ppn);
    let mut timer = IoTimer::new(cfg.procs);

    match cfg.layout {
        FileLayout::FilePerProcess => {
            // N files: open one per rank (all through the same method).
            let mut files: Vec<MpiFile> = Vec::with_capacity(cfg.procs);
            for r in 0..cfg.procs {
                // Each "file" opened by a single-rank communicator slice;
                // model with a fresh single-rank job clock carried in the
                // main job.
                let mut solo = Job::new(1, 1);
                solo.set_time(0, job.time(r));
                let f = MpiFile::open(
                    &mut fs,
                    &mut solo,
                    &format!("/ior.{r:06}"),
                    true,
                    method,
                    MpiInfo::default(),
                    cfg.num_hostdirs,
                )?;
                job.set_time(r, solo.time(0));
                files.push(f);
            }
            job.barrier();
            for t in 0..cfg.transfers_per_block {
                for (r, file) in files.iter_mut().enumerate() {
                    let t0 = job.time(r);
                    // Write through the main job so the rank keeps its real
                    // node; PLFS drivers create the rank's stream lazily.
                    let c = file.write_at(
                        &mut fs,
                        &mut job,
                        r,
                        t * cfg.transfer,
                        cfg.transfer,
                        Access::Contiguous,
                    )?;
                    timer.add(r, t0, c);
                }
            }
            let t0 = job.max_time();
            for f in files {
                f.close(&mut fs, &mut job)?;
            }
            timer.add_all(t0, job.max_time());
        }
        shared => {
            let mut file = MpiFile::open(
                &mut fs,
                &mut job,
                "/ior.shared",
                true,
                method,
                MpiInfo::default(),
                cfg.num_hostdirs,
            )?;
            for t in 0..cfg.transfers_per_block {
                match cfg.api {
                    ApiMode::Collective => {
                        let ios: Vec<RankIo> = (0..cfg.procs)
                            .map(|r| RankIo {
                                offset: offset_of(shared, cfg, r, t),
                                len: cfg.transfer,
                            })
                            .collect();
                        let t0 = job.max_time();
                        let release = file.write_at_all(&mut fs, &mut job, &ios)?;
                        timer.add_all(t0, release);
                    }
                    ApiMode::Independent => {
                        for r in 0..cfg.procs {
                            let t0 = job.time(r);
                            let access = match shared {
                                FileLayout::SharedStrided => Access::Strided,
                                _ => Access::Contiguous,
                            };
                            let c = file.write_at(
                                &mut fs,
                                &mut job,
                                r,
                                offset_of(shared, cfg, r, t),
                                cfg.transfer,
                                access,
                            )?;
                            timer.add(r, t0, c);
                        }
                    }
                }
            }
            let t0 = job.max_time();
            file.close(&mut fs, &mut job)?;
            timer.add_all(t0, job.max_time());
        }
    }

    Ok(BenchPoint {
        method: method.label().to_string(),
        procs: cfg.procs,
        nodes: cfg.procs.div_ceil(cfg.ppn),
        bytes: cfg.total_bytes(),
        seconds: timer.max(),
    })
}

fn offset_of(layout: FileLayout, cfg: &IorConfig, rank: usize, transfer: u64) -> u64 {
    match layout {
        FileLayout::SharedSegmented => rank as u64 * cfg.bytes_per_proc() + transfer * cfg.transfer,
        FileLayout::SharedStrided => (transfer * cfg.procs as u64 + rank as u64) * cfg.transfer,
        FileLayout::FilePerProcess => transfer * cfg.transfer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::presets;

    fn cfg(layout: FileLayout, api: ApiMode) -> IorConfig {
        IorConfig {
            procs: 8,
            ppn: 2,
            transfer: 1 << 20,
            transfers_per_block: 4,
            layout,
            api,
            num_hostdirs: 8,
        }
    }

    #[test]
    fn offsets_partition_the_file() {
        let c = cfg(FileLayout::SharedSegmented, ApiMode::Independent);
        // Segmented: all (rank, transfer) offsets are distinct and tile
        // [0, total).
        let mut offs: Vec<u64> = (0..c.procs)
            .flat_map(|r| (0..c.transfers_per_block).map(move |t| (r, t)))
            .map(|(r, t)| offset_of(c.layout, &c, r, t))
            .collect();
        offs.sort_unstable();
        let expect: Vec<u64> = (0..(c.procs as u64 * c.transfers_per_block))
            .map(|i| i * c.transfer)
            .collect();
        assert_eq!(offs, expect);

        // Strided also tiles the same range.
        let c = cfg(FileLayout::SharedStrided, ApiMode::Independent);
        let mut offs: Vec<u64> = (0..c.procs)
            .flat_map(|r| (0..c.transfers_per_block).map(move |t| (r, t)))
            .map(|(r, t)| offset_of(c.layout, &c, r, t))
            .collect();
        offs.sort_unstable();
        assert_eq!(offs, expect);
    }

    #[test]
    fn all_layouts_move_all_bytes() {
        let p = presets::toy();
        for layout in [
            FileLayout::SharedSegmented,
            FileLayout::SharedStrided,
            FileLayout::FilePerProcess,
        ] {
            let c = cfg(layout, ApiMode::Independent);
            let b = run_write(&p, &c, Method::MpiIo).unwrap();
            assert_eq!(b.bytes, c.total_bytes(), "{layout:?}");
            assert!(b.seconds > 0.0, "{layout:?}");
        }
    }

    #[test]
    fn file_per_process_beats_shared_strided_on_posix() {
        // The PLFS premise, visible in plain IOR: N-N over N-1 strided —
        // sharpest with small transfers, where strided shared writes fall
        // into data-sieving read-modify-write.
        let p = presets::sierra();
        let mut c = cfg(FileLayout::SharedStrided, ApiMode::Independent);
        c.procs = 24;
        c.ppn = 12;
        c.transfer = 64 << 10;
        let shared = run_write(&p, &c, Method::MpiIo).unwrap();
        c.layout = FileLayout::FilePerProcess;
        let fpp = run_write(&p, &c, Method::MpiIo).unwrap();
        assert!(
            fpp.bandwidth_mbs() > shared.bandwidth_mbs(),
            "N-N {} <= N-1 {}",
            fpp.bandwidth_mbs(),
            shared.bandwidth_mbs()
        );
    }

    #[test]
    fn plfs_closes_the_gap_on_shared_strided() {
        // PLFS makes shared-strided behave like file-per-process.
        let p = presets::sierra();
        let mut c = cfg(FileLayout::SharedStrided, ApiMode::Independent);
        c.procs = 24;
        c.ppn = 12;
        c.transfer = 64 << 10;
        let posix_shared = run_write(&p, &c, Method::MpiIo).unwrap();
        let plfs_shared = run_write(&p, &c, Method::Ldplfs).unwrap();
        c.layout = FileLayout::FilePerProcess;
        let posix_fpp = run_write(&p, &c, Method::MpiIo).unwrap();
        assert!(plfs_shared.bandwidth_mbs() > posix_shared.bandwidth_mbs());
        // Within 2x of native file-per-process.
        assert!(plfs_shared.bandwidth_mbs() > posix_fpp.bandwidth_mbs() / 2.0);
    }

    #[test]
    fn collective_mode_runs() {
        let p = presets::toy();
        let c = cfg(FileLayout::SharedStrided, ApiMode::Collective);
        let b = run_write(&p, &c, Method::Romio).unwrap();
        assert!(b.bandwidth_mbs().is_finite());
    }
}
