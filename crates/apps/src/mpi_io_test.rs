//! The LANL MPI-IO Test workload (paper §III.C, Figure 3).
//!
//! "Writing a total of 1 GB per process in 8 MB blocks. Collective blocking
//! MPI-IO operations are employed" — an N-to-1 strided pattern: in step
//! `b`, rank `r` owns the block at offset `(b · procs + r) · block_size`.
//! The union of a step is contiguous, so collective buffering turns each
//! step into one large aggregator write per node.

use crate::result::{BenchPoint, IoTimer};
use mpiio::{Job, Method, MpiFile, MpiInfo, RankIo};
use simfs::{Platform, SimFs, SimResult};

/// Parameters of one MPI-IO Test run.
#[derive(Debug, Clone, Copy)]
pub struct MpiIoTestConfig {
    /// Processes per node.
    pub ppn: usize,
    /// Number of nodes (procs = nodes × ppn).
    pub nodes: usize,
    /// Bytes written per process over the whole run.
    pub bytes_per_proc: u64,
    /// Block size of each write call.
    pub block_size: u64,
    /// PLFS hostdir count for the PLFS-backed methods.
    pub num_hostdirs: u32,
}

impl MpiIoTestConfig {
    /// The paper's configuration at a given scale: 1 GB per process in
    /// 8 MB blocks.
    pub fn paper(nodes: usize, ppn: usize) -> MpiIoTestConfig {
        MpiIoTestConfig {
            ppn,
            nodes,
            bytes_per_proc: 1 << 30,
            block_size: 8 << 20,
            num_hostdirs: 32,
        }
    }

    /// Total processes.
    pub fn procs(&self) -> usize {
        self.nodes * self.ppn
    }

    /// Write steps per process.
    pub fn steps(&self) -> u64 {
        self.bytes_per_proc / self.block_size
    }
}

/// Direction of the measured phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// N-to-1 write.
    Write,
    /// Read the file back on the same ranks.
    Read,
}

/// Run MPI-IO Test on a fresh file system; returns the benchmark's write or
/// read measurement.
pub fn run(
    platform: &Platform,
    cfg: &MpiIoTestConfig,
    method: Method,
    phase: Phase,
) -> SimResult<BenchPoint> {
    let mut fs = SimFs::new(platform.clone());
    let procs = cfg.procs();
    let mut job = Job::new(procs, cfg.ppn);
    let mut timer = IoTimer::new(procs);

    let mut file = MpiFile::open(
        &mut fs,
        &mut job,
        "/mpiio_test.out",
        true,
        method,
        MpiInfo::default(),
        cfg.num_hostdirs,
    )?;

    // Write phase always happens (reads need data); only the requested
    // phase is timed.
    let steps = cfg.steps();
    for step in 0..steps {
        let ios: Vec<RankIo> = (0..procs)
            .map(|r| RankIo {
                offset: (step * procs as u64 + r as u64) * cfg.block_size,
                len: cfg.block_size,
            })
            .collect();
        let t0 = job.max_time();
        let release = file.write_at_all(&mut fs, &mut job, &ios)?;
        if phase == Phase::Write {
            timer.add_all(t0, release);
        }
    }

    if phase == Phase::Read {
        for step in 0..steps {
            let ios: Vec<RankIo> = (0..procs)
                .map(|r| RankIo {
                    offset: (step * procs as u64 + r as u64) * cfg.block_size,
                    len: cfg.block_size,
                })
                .collect();
            let t0 = job.max_time();
            let release = file.read_at_all(&mut fs, &mut job, &ios)?;
            timer.add_all(t0, release);
        }
    }

    file.close(&mut fs, &mut job)?;
    let bytes = cfg.bytes_per_proc * procs as u64;
    Ok(BenchPoint {
        method: method.label().to_string(),
        procs,
        nodes: cfg.nodes,
        bytes,
        seconds: timer.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::presets;

    fn small() -> MpiIoTestConfig {
        MpiIoTestConfig {
            ppn: 2,
            nodes: 2,
            bytes_per_proc: 32 << 20,
            block_size: 8 << 20,
            num_hostdirs: 8,
        }
    }

    #[test]
    fn write_produces_finite_bandwidth() {
        let p = presets::minerva();
        let b = run(&p, &small(), Method::Ldplfs, Phase::Write).unwrap();
        assert_eq!(b.procs, 4);
        assert_eq!(b.bytes, 128 << 20);
        assert!(b.seconds > 0.0);
        assert!(b.bandwidth_mbs().is_finite());
    }

    #[test]
    fn plfs_beats_shared_file_on_minerva() {
        let p = presets::minerva();
        let cfg = MpiIoTestConfig {
            ppn: 1,
            nodes: 8,
            bytes_per_proc: 64 << 20,
            block_size: 8 << 20,
            num_hostdirs: 8,
        };
        let mpiio = run(&p, &cfg, Method::MpiIo, Phase::Write).unwrap();
        let ldplfs = run(&p, &cfg, Method::Ldplfs, Phase::Write).unwrap();
        assert!(
            ldplfs.bandwidth_mbs() > mpiio.bandwidth_mbs(),
            "PLFS {} <= MPI-IO {}",
            ldplfs.bandwidth_mbs(),
            mpiio.bandwidth_mbs()
        );
    }

    #[test]
    fn ldplfs_close_to_romio() {
        let p = presets::minerva();
        let cfg = small();
        let romio = run(&p, &cfg, Method::Romio, Phase::Write).unwrap();
        let ldplfs = run(&p, &cfg, Method::Ldplfs, Phase::Write).unwrap();
        let ratio = ldplfs.bandwidth_mbs() / romio.bandwidth_mbs();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fuse_slowest_of_plfs_paths() {
        let p = presets::minerva();
        let cfg = small();
        let fuse = run(&p, &cfg, Method::Fuse, Phase::Write).unwrap();
        let romio = run(&p, &cfg, Method::Romio, Phase::Write).unwrap();
        assert!(fuse.bandwidth_mbs() < romio.bandwidth_mbs());
    }

    #[test]
    fn read_phase_measures_reads() {
        let p = presets::minerva();
        let b = run(&p, &small(), Method::Romio, Phase::Read).unwrap();
        assert!(b.seconds > 0.0);
        assert!(b.bandwidth_mbs().is_finite());
    }

    #[test]
    fn node_scaling_is_monotone_for_plfs_at_small_scale() {
        // More nodes, more aggregators, more parallel droppings — PLFS
        // bandwidth should not fall over this range on Minerva.
        let p = presets::minerva();
        let mut prev = 0.0;
        for nodes in [1usize, 2, 4] {
            let cfg = MpiIoTestConfig {
                ppn: 1,
                nodes,
                bytes_per_proc: 32 << 20,
                block_size: 8 << 20,
                num_hostdirs: 8,
            };
            let b = run(&p, &cfg, Method::Ldplfs, Phase::Write).unwrap();
            assert!(
                b.bandwidth_mbs() >= prev * 0.9,
                "dropped at {nodes} nodes: {} < {prev}",
                b.bandwidth_mbs()
            );
            prev = b.bandwidth_mbs();
        }
    }
}
