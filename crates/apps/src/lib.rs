//! # apps — the paper's workloads
//!
//! Generators for every benchmark in the evaluation, plus the serial UNIX
//! tools:
//!
//! * [`mpi_io_test`] — LANL MPI-IO Test (Figure 3's workload);
//! * [`nas_bt`] — NAS BT I/O, classes C and D (Figure 4);
//! * [`flash_io`] — FLASH-IO weak-scaled checkpointing (Figure 5);
//! * [`unix_tools`] — `cp`/`cat`/`grep`/`md5sum` over the POSIX layer
//!   (Table II), with a simulated-login-node timing model;
//! * [`hdf5lite`] — an HDF5-like container format for the real-execution
//!   FLASH demos;
//! * [`md5`] — RFC 1321, used by `md5sum`;
//! * [`ior`] — an IOR-style parameterised benchmark for exploring beyond
//!   the paper's fixed configurations.

#![warn(missing_docs)]

pub mod flash_io;
pub mod hdf5lite;
pub mod ior;
pub mod md5;
pub mod mpi_io_test;
pub mod nas_bt;
pub mod restart;
pub mod result;
pub mod unix_tools;

pub use result::{BenchPoint, IoTimer};
