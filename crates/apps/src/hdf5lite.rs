//! A miniature HDF5-like container format ("H5L") over the POSIX layer.
//!
//! FLASH-IO writes its checkpoints through HDF5. For the *real-execution*
//! path (examples and integration tests that drive the actual LDPLFS shim
//! rather than the simulator) we need a self-describing scientific file
//! format whose writer issues the same kind of call pattern: a superblock,
//! per-dataset headers, then large contiguous data slabs. This module
//! implements one, plus a reader that validates round-trips.
//!
//! Layout (little-endian):
//!
//! ```text
//! superblock:  "H5L\0" | version: u32 | ndatasets: u32 | reserved: u32
//! per dataset: name_len: u32 | name bytes | dtype: u32 | nelems: u64 | data
//! ```

use ldplfs::{CFile, Errno, PosixLayer, PosixResult};
use std::sync::Arc;

/// Magic prefix of an H5L file.
pub const MAGIC: &[u8; 4] = b"H5L\0";
/// Format version.
pub const VERSION: u32 = 1;

/// Element types supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 64-bit IEEE float (FLASH's unknowns).
    F64,
    /// Raw bytes.
    U8,
}

impl Dtype {
    fn code(self) -> u32 {
        match self {
            Dtype::F64 => 1,
            Dtype::U8 => 2,
        }
    }

    fn from_code(c: u32) -> Option<Dtype> {
        match c {
            1 => Some(Dtype::F64),
            2 => Some(Dtype::U8),
            _ => None,
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            Dtype::F64 => 8,
            Dtype::U8 => 1,
        }
    }
}

/// One dataset to write.
pub struct Dataset<'a> {
    /// Dataset name (e.g. "dens", "pres").
    pub name: &'a str,
    /// Element type.
    pub dtype: Dtype,
    /// Raw little-endian element bytes.
    pub data: &'a [u8],
}

/// Write an H5L file with the given datasets.
pub fn write(layer: &Arc<dyn PosixLayer>, path: &str, datasets: &[Dataset<'_>]) -> PosixResult<()> {
    let mut f = CFile::open(layer.clone(), path, "w")?;
    f.write(MAGIC)?;
    f.write(&VERSION.to_le_bytes())?;
    f.write(&(datasets.len() as u32).to_le_bytes())?;
    f.write(&0u32.to_le_bytes())?;
    for ds in datasets {
        if ds.data.len() % ds.dtype.size() != 0 {
            return Err(Errno::EINVAL);
        }
        let name = ds.name.as_bytes();
        f.write(&(name.len() as u32).to_le_bytes())?;
        f.write(name)?;
        f.write(&ds.dtype.code().to_le_bytes())?;
        let nelems = (ds.data.len() / ds.dtype.size()) as u64;
        f.write(&nelems.to_le_bytes())?;
        f.write(ds.data)?;
    }
    f.close()
}

/// A dataset read back from an H5L file.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedDataset {
    /// Dataset name.
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Raw element bytes.
    pub data: Vec<u8>,
}

fn read_exact(f: &mut CFile, buf: &mut [u8]) -> PosixResult<()> {
    let n = f.read(buf)?;
    if n != buf.len() {
        return Err(Errno::EIO);
    }
    Ok(())
}

/// Read and validate a whole H5L file.
pub fn read(layer: &Arc<dyn PosixLayer>, path: &str) -> PosixResult<Vec<OwnedDataset>> {
    let mut f = CFile::open(layer.clone(), path, "r")?;
    let mut hdr = [0u8; 16];
    read_exact(&mut f, &mut hdr)?;
    if &hdr[0..4] != MAGIC {
        return Err(Errno::EINVAL);
    }
    let version = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(Errno::EINVAL);
    }
    let n = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let mut len4 = [0u8; 4];
        read_exact(&mut f, &mut len4)?;
        let name_len = u32::from_le_bytes(len4) as usize;
        if name_len > 4096 {
            return Err(Errno::EINVAL);
        }
        let mut name = vec![0u8; name_len];
        read_exact(&mut f, &mut name)?;
        let mut meta = [0u8; 12];
        read_exact(&mut f, &mut meta)?;
        let dtype = Dtype::from_code(u32::from_le_bytes(meta[0..4].try_into().unwrap()))
            .ok_or(Errno::EINVAL)?;
        let nelems = u64::from_le_bytes(meta[4..12].try_into().unwrap());
        let mut data = vec![0u8; nelems as usize * dtype.size()];
        read_exact(&mut f, &mut data)?;
        out.push(OwnedDataset {
            name: String::from_utf8(name).map_err(|_| Errno::EINVAL)?,
            dtype,
            data,
        });
    }
    f.close()?;
    Ok(out)
}

/// Convenience: pack a slice of f64s into little-endian bytes.
pub fn pack_f64(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldplfs::{LdPlfsBuilder, PosixLayer, RealPosix};
    use plfs::{MemBacking, Plfs};

    fn shim(name: &str) -> Arc<dyn PosixLayer> {
        let dir = std::env::temp_dir().join(format!("apps-h5l-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let under = Arc::new(RealPosix::rooted(dir).unwrap());
        Arc::new(
            LdPlfsBuilder::new(under)
                .mount("/plfs", Plfs::new(Arc::new(MemBacking::new())))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn roundtrip_on_plfs_container() {
        let l = shim("rt");
        let dens = pack_f64(&[1.0, 2.5, -3.75]);
        let flags = vec![1u8, 0, 1, 1];
        write(
            &l,
            "/plfs/chk_0000",
            &[
                Dataset {
                    name: "dens",
                    dtype: Dtype::F64,
                    data: &dens,
                },
                Dataset {
                    name: "flags",
                    dtype: Dtype::U8,
                    data: &flags,
                },
            ],
        )
        .unwrap();
        let back = read(&l, "/plfs/chk_0000").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "dens");
        assert_eq!(back[0].dtype, Dtype::F64);
        assert_eq!(back[0].data, dens);
        assert_eq!(back[1].name, "flags");
        assert_eq!(back[1].data, flags);
    }

    #[test]
    fn rejects_bad_magic_and_misaligned_data() {
        let l = shim("bad");
        {
            let mut f = CFile::open(l.clone(), "/plfs/garbage", "w").unwrap();
            f.write(b"NOPEnope").unwrap();
            f.close().unwrap();
        }
        assert_eq!(read(&l, "/plfs/garbage"), Err(Errno::EIO));
        let odd = [1u8, 2, 3];
        assert_eq!(
            write(
                &l,
                "/plfs/bad",
                &[Dataset {
                    name: "x",
                    dtype: Dtype::F64,
                    data: &odd
                }]
            ),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn identical_bytes_on_plain_and_plfs() {
        let l = shim("same");
        let data = pack_f64(&(0..1000).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
        let ds = [Dataset {
            name: "u",
            dtype: Dtype::F64,
            data: &data,
        }];
        write(&l, "/plfs/a.h5l", &ds).unwrap();
        write(&l, "/plain.h5l", &ds).unwrap();
        let a = crate::unix_tools::md5sum(&l, "/plfs/a.h5l").unwrap();
        let b = crate::unix_tools::md5sum(&l, "/plain.h5l").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_file_is_eio() {
        let l = shim("trunc");
        let data = pack_f64(&[1.0, 2.0]);
        write(
            &l,
            "/plfs/t.h5l",
            &[Dataset {
                name: "d",
                dtype: Dtype::F64,
                data: &data,
            }],
        )
        .unwrap();
        // Chop the tail off.
        l.truncate("/plfs/t.h5l", 20).unwrap();
        assert_eq!(read(&l, "/plfs/t.h5l"), Err(Errno::EIO));
    }
}
