//! Unit tests for the workspace call graph on a synthetic two-crate
//! fixture: name resolution across crates, conservative method handling,
//! and the transitive lock/IO closures the dataflow passes consume.

use plfs_lint::callgraph::{Call, Graph};
use plfs_lint::FileCtx;

/// Two files in different crates. `entry` (crate alpha) takes a lock and
/// calls into crate beta, where `deep` takes a second lock and
/// `backing_write` touches the backing store.
fn two_crate_ctxs() -> Vec<FileCtx> {
    let alpha = "pub fn entry(s: &S) {\n\
                 \x20   let g = state.lock();\n\
                 \x20   cross_helper(s);\n\
                 }\n";
    let beta = "pub fn cross_helper(s: &S) {\n\
                \x20   deep(s);\n\
                }\n\
                fn deep(s: &S) {\n\
                \x20   let d = inner.lock();\n\
                \x20   backing_write(s);\n\
                }\n\
                fn backing_write(s: &S) {\n\
                \x20   s.backing.put(0);\n\
                }\n";
    vec![
        FileCtx::new("crates/alpha/src/lib.rs", alpha),
        FileCtx::new("crates/beta/src/lib.rs", beta),
    ]
}

fn idx(graph: &Graph, name: &str) -> usize {
    graph
        .fns
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("fn {name} not in graph"))
}

#[test]
fn finds_all_functions_and_their_events() {
    let ctxs = two_crate_ctxs();
    let graph = Graph::build(&ctxs);
    assert_eq!(graph.fns.len(), 4);
    let entry = &graph.fns[idx(&graph, "entry")];
    assert_eq!(entry.file, 0);
    // Guard bound on line 1 is held on line 2 where the call happens.
    let call_line = &entry.events[2];
    assert_eq!(call_line.held, ["state"]);
    assert_eq!(
        call_line.calls,
        [Call {
            name: "cross_helper".into(),
            method: false
        }]
    );
    let deep = &graph.fns[idx(&graph, "deep")];
    assert_eq!(deep.events[1].acquires, [("inner".to_string(), true)]);
}

#[test]
fn plain_calls_resolve_across_crates_generic_methods_do_not() {
    let ctxs = two_crate_ctxs();
    let graph = Graph::build(&ctxs);
    let (entry, helper) = (idx(&graph, "entry"), idx(&graph, "cross_helper"));
    // Unique plain call resolves even though caller and callee live in
    // different crates.
    assert_eq!(graph.edges[entry], [helper]);
    // `.put(…)` is a method call on an untracked receiver: it must not
    // resolve to anything, even if a `fn put` existed somewhere.
    let bw = idx(&graph, "backing_write");
    assert!(graph.edges[bw].is_empty());
    // resolve() agrees with the edge list.
    assert_eq!(
        graph.resolve(
            entry,
            &Call {
                name: "cross_helper".into(),
                method: false
            }
        ),
        Some(helper)
    );
}

#[test]
fn transitive_closures_propagate_through_the_chain() {
    let ctxs = two_crate_ctxs();
    let graph = Graph::build(&ctxs);
    let entry = idx(&graph, "entry");
    let acquires = graph.transitive_acquires();
    // entry's closure sees its own lock and deep's, two hops away.
    assert!(acquires[entry].contains("state"));
    assert!(acquires[entry].contains("inner"));
    // backing IO in the leaf is visible from the root, and from every
    // link of the chain, but leaf-ward facts never flow backwards.
    let io = graph.transitive_io();
    assert!(io[entry]);
    assert!(io[idx(&graph, "cross_helper")]);
    assert!(io[idx(&graph, "backing_write")]);
    let leaf_acquires = &graph.transitive_acquires()[idx(&graph, "backing_write")];
    assert!(leaf_acquires.is_empty());
}

#[test]
fn ambiguous_and_test_only_names_do_not_resolve() {
    let a = "pub fn caller() {\n\
             \x20   twin();\n\
             }\n";
    let b = "pub fn twin() {}\n";
    let c = "pub fn twin() {}\n";
    let ctxs = vec![
        FileCtx::new("crates/alpha/src/lib.rs", a),
        FileCtx::new("crates/beta/src/lib.rs", b),
        FileCtx::new("crates/gamma/src/lib.rs", c),
    ];
    let graph = Graph::build(&ctxs);
    // Two candidate `twin`s in two other crates: ambiguous, no edge.
    assert!(graph.edges[idx(&graph, "caller")].is_empty());
    // A #[cfg(test)] definition is not a resolution candidate.
    let main = "pub fn run() {\n\
                \x20   helper();\n\
                }\n\
                #[cfg(test)]\n\
                mod tests {\n\
                \x20   pub fn helper() {}\n\
                }\n";
    let ctxs = vec![FileCtx::new("crates/alpha/src/lib.rs", main)];
    let graph = Graph::build(&ctxs);
    assert!(graph.edges[idx(&graph, "run")].is_empty());
}
