//! SARIF renderer round-trip: everything `render_sarif` emits must pass
//! the independent `check_sarif` validator, and the validator must reject
//! structurally broken documents — the same gate verify.sh applies to the
//! live workspace report.

use plfs_lint::{check_sarif, lint_source, render_sarif, Finding};

const PLFS: &str = "crates/plfs/src/fd.rs";

#[test]
fn empty_report_round_trips() {
    let doc = render_sarif(&[]);
    assert_eq!(check_sarif(&doc), Ok(0));
}

#[test]
fn findings_round_trip_with_locations_intact() {
    let src = "impl S {\n\
               \x20   fn a(&self) {\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       let h = self.beta.lock();\n\
               \x20   }\n\
               \x20   fn b(&self) {\n\
               \x20       let g = self.beta.lock();\n\
               \x20       let h = self.alpha.lock();\n\
               \x20   }\n\
               }\n";
    let findings = lint_source(PLFS, src);
    assert!(!findings.is_empty());
    let doc = render_sarif(&findings);
    assert_eq!(check_sarif(&doc), Ok(findings.len()));
    // Line numbers are 1-based in SARIF; our findings are 1-based too, so
    // the rendered region must match the finding verbatim.
    let parsed = jsonlite::parse(&doc).expect("renderer emits valid JSON");
    let result = &parsed.get("runs").unwrap().as_array().unwrap()[0]
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        result.get("ruleId").and_then(|v| v.as_str()),
        Some(findings[0].rule)
    );
    let region = result
        .get("locations")
        .and_then(|l| l.as_array())
        .map(|l| &l[0])
        .and_then(|l| l.get("physicalLocation"))
        .and_then(|p| p.get("region"))
        .expect("physicalLocation.region present");
    assert_eq!(
        region.get("startLine").and_then(|v| v.as_u64()),
        Some(findings[0].line as u64)
    );
}

#[test]
fn every_rule_id_is_indexed() {
    // One synthetic finding per rule: ruleIndex back-references must hold
    // for all of them, not just the ones the live tree happens to emit.
    let findings: Vec<Finding> = plfs_lint::RULES
        .iter()
        .map(|rule| Finding {
            file: "crates/plfs/src/fd.rs".to_string(),
            line: 1,
            rule,
            snippet: "let x = 0;".to_string(),
            message: format!("synthetic {rule}"),
        })
        .collect();
    let doc = render_sarif(&findings);
    assert_eq!(check_sarif(&doc), Ok(findings.len()));
}

#[test]
fn validator_rejects_broken_documents() {
    let doc = render_sarif(&[]);
    // Not JSON at all.
    assert!(check_sarif("not json").is_err());
    // Wrong version.
    let bad = doc.replace("\"2.1.0\"", "\"9.9\"");
    assert!(check_sarif(&bad).is_err());
    // Wrong driver name.
    let bad = doc.replace("plfs-lint", "other-tool");
    assert!(check_sarif(&bad).is_err());
    // Zero-based line number in a result.
    let findings = vec![Finding {
        file: "crates/plfs/src/fd.rs".to_string(),
        line: 1,
        rule: "lock-across-io",
        snippet: "let g = self.map.lock();".to_string(),
        message: "m".to_string(),
    }];
    let bad = render_sarif(&findings).replace("\"startLine\": 1", "\"startLine\": 0");
    assert!(check_sarif(&bad).is_err());
}
