//! Fixture tests: every rule must fire on a violating snippet, stay quiet
//! on a clean one, and stay quiet when suppressed with a justification.
//! Plus lexer edge cases (raw strings, nested comments, char literals).

use plfs_lint::{lint_source, Finding};

const PRELOAD: &str = "crates/preload/src/lib.rs";
const LDPLFS: &str = "crates/ldplfs/src/shim.rs";
const PLFS: &str = "crates/plfs/src/fd.rs";

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- panic-in-ffi

#[test]
fn panic_in_ffi_fires_on_unwrap_in_shim_code() {
    let src = "fn helper() { let x = foo().unwrap(); }\n";
    assert_eq!(rules(&lint_source(PRELOAD, src)), ["panic-in-ffi"]);
    assert_eq!(rules(&lint_source(LDPLFS, src)), ["panic-in-ffi"]);
    // Same code outside the shim crates is not this rule's business.
    assert!(lint_source(PLFS, src).is_empty());
}

#[test]
fn panic_in_ffi_fires_on_each_panic_family_macro() {
    for call in [
        "panic!(\"x\")",
        "unreachable!()",
        "todo!()",
        "unimplemented!()",
        "x.expect(\"y\")",
    ] {
        let src = format!("fn f() {{ {call}; }}\n");
        assert_eq!(
            rules(&lint_source(PRELOAD, &src)),
            ["panic-in-ffi"],
            "{call}"
        );
    }
}

#[test]
fn panic_in_ffi_allows_debug_assert_and_test_code() {
    let clean = "fn f() { debug_assert!(x != 0, \"msg\"); }\n";
    assert!(lint_source(PRELOAD, clean).is_empty());
    let test_mod = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { foo().unwrap(); }\n}\n";
    assert!(lint_source(PRELOAD, test_mod).is_empty());
}

#[test]
fn panic_in_ffi_is_quiet_when_suppressed_with_reason() {
    let src = "// plfs-lint: allow(panic-in-ffi, \"checked non-null above\")\n\
               fn f() { let x = foo().unwrap(); }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "// plfs-lint: allow(panic-in-ffi)\nfn f() { let x = foo().unwrap(); }\n";
    let f = lint_source(PRELOAD, src);
    assert!(f.iter().any(|f| f.rule == "bad-suppression"), "{f:?}");
    // And the bare allow() does NOT suppress the underlying finding.
    assert!(f.iter().any(|f| f.rule == "panic-in-ffi"), "{f:?}");
}

#[test]
fn panic_in_ffi_flags_indexing_only_inside_extern_c() {
    let bad = "#[no_mangle]\npub unsafe extern \"C\" fn read(fd: i32) -> i32 {\n    buf[0]\n}\n";
    let f = lint_source(PRELOAD, bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "panic-in-ffi" && f.snippet.contains("buf[0]")),
        "{f:?}"
    );
    let ok = "fn helper(buf: &[u8]) -> u8 { buf[0] }\n";
    assert!(lint_source(PRELOAD, ok).is_empty());
}

// ----------------------------------------------------------------- ffi-barrier

#[test]
fn ffi_barrier_fires_on_unguarded_extern_fn() {
    let src = "#[no_mangle]\npub unsafe extern \"C\" fn close(fd: i32) -> i32 {\n    0\n}\n";
    assert!(rules(&lint_source(PRELOAD, src)).contains(&"ffi-barrier"));
    // Guarded version is clean.
    let ok = "#[no_mangle]\npub unsafe extern \"C\" fn close(fd: i32) -> i32 {\n    ffi_guard!(-1, do_close(fd))\n}\n";
    assert!(lint_source(PRELOAD, ok).is_empty());
}

#[test]
fn ffi_barrier_ignores_foreign_block_declarations() {
    let src = "extern \"C\" {\n    fn getpid() -> i32;\n    fn dlsym(h: *mut u8) -> *mut u8;\n}\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}

#[test]
fn ffi_barrier_only_applies_to_preload() {
    let src = "pub unsafe extern \"C\" fn cb(x: i32) -> i32 { x }\n";
    assert!(!rules(&lint_source(LDPLFS, src)).contains(&"ffi-barrier"));
}

#[test]
fn ffi_barrier_respects_suppression() {
    let src = "// plfs-lint: allow(ffi-barrier, \"pure arithmetic, cannot panic\")\n\
               pub unsafe extern \"C\" fn ident(x: i32) -> i32 { x }\n";
    assert!(!rules(&lint_source(PRELOAD, src)).contains(&"ffi-barrier"));
}

// ------------------------------------------------------------ errno-discipline

#[test]
fn errno_discipline_fires_on_bare_minus_one_return() {
    let src = "unsafe fn do_thing(fd: i32) -> i32 {\n    if fd < 0 {\n        return -1;\n    }\n    0\n}\n";
    assert_eq!(rules(&lint_source(PRELOAD, src)), ["errno-discipline"]);
}

#[test]
fn errno_discipline_satisfied_by_set_errno_or_guard() {
    let a = "unsafe fn do_thing(fd: i32) -> i32 {\n    set_errno(9);\n    -1\n}\n";
    assert!(lint_source(PRELOAD, a).is_empty());
    let b = "pub unsafe extern \"C\" fn f(fd: i32) -> i32 {\n    ffi_guard!(-1, do_f(fd))\n}\n";
    assert!(lint_source(PRELOAD, b).is_empty());
}

// ----------------------------------------------------- relaxed-ordering-audit

#[test]
fn relaxed_audit_fires_without_justification() {
    let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    for path in [PRELOAD, LDPLFS, PLFS, "crates/iotrace/src/lib.rs"] {
        assert_eq!(
            rules(&lint_source(path, src)),
            ["relaxed-ordering-audit"],
            "{path}"
        );
    }
}

#[test]
fn relaxed_audit_accepts_annotation_same_or_previous_line() {
    let same =
        "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // relaxed: counter only\n}\n";
    assert!(lint_source(PLFS, same).is_empty());
    let prev = "fn f(c: &AtomicU64) {\n    // relaxed: statistical counter, no ordering carried\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert!(lint_source(PLFS, prev).is_empty());
}

#[test]
fn relaxed_audit_rejects_empty_justification() {
    let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // relaxed:\n}\n";
    assert_eq!(rules(&lint_source(PLFS, src)), ["relaxed-ordering-audit"]);
}

// ----------------------------------------------------------- lock-across-io

#[test]
fn lock_across_io_fires_on_guard_held_over_backing_call() {
    let src =
        "fn f(&self) {\n    let guard = self.reader.lock();\n    self.backing.open(path);\n}\n";
    assert_eq!(rules(&lint_source(PLFS, src)), ["lock-across-io"]);
    // Only crates/plfs is in scope.
    assert!(lint_source("crates/iotrace/src/lib.rs", src).is_empty());
}

#[test]
fn lock_across_io_respects_drop_and_block_end() {
    let dropped = "fn f(&self) {\n    let guard = self.reader.lock();\n    drop(guard);\n    self.backing.open(path);\n}\n";
    assert!(lint_source(PLFS, dropped).is_empty());
    let scoped = "fn f(&self) {\n    {\n        let guard = self.reader.lock();\n        guard.push(1);\n    }\n    self.backing.open(path);\n}\n";
    assert!(lint_source(PLFS, scoped).is_empty());
}

#[test]
fn lock_across_io_ignores_read_with_arguments() {
    // `.read(buf)` is file I/O, not a lock guard; only `.read();` binds one.
    let src = "fn f(&self) {\n    let n = file.read(buf);\n    self.backing.open(path);\n}\n";
    assert!(lint_source(PLFS, src).is_empty());
}

#[test]
fn lock_across_io_respects_suppression() {
    let src = "fn f(&self) {\n    let guard = self.reader.lock();\n    // plfs-lint: allow(lock-across-io, \"seed once under the latch\")\n    self.backing.open(path);\n}\n";
    assert!(lint_source(PLFS, src).is_empty());
}

// ------------------------------------------------------- no-direct-backing-io

#[test]
fn no_direct_backing_io_fires_on_std_fs() {
    for line in [
        "std::fs::read(p)",
        "fs::File::open(p)",
        "OpenOptions::new()",
    ] {
        let src = format!("fn f() {{ let x = {line}; }}\n");
        assert!(
            rules(&lint_source(PLFS, &src)).contains(&"no-direct-backing-io"),
            "{line}"
        );
    }
}

#[test]
fn no_direct_backing_io_exempts_backing_rs_and_own_types() {
    let src = "fn f() { let x = std::fs::read(p); }\n";
    assert!(lint_source("crates/plfs/src/backing.rs", src).is_empty());
    // The container layer's own ReadFile/WriteFile are fine anywhere.
    let own = "fn f(b: &dyn Backing) { let r = ReadFile::open(b, c); let w = WriteFile::open_with(b, c, p); }\n";
    assert!(lint_source(PLFS, own).is_empty());
}

// ------------------------------------------------------------- lexer edge cases

#[test]
fn lexer_ignores_panics_inside_strings_and_comments() {
    let src = concat!(
        "fn f() {\n",
        "    let a = \"calls .unwrap() inside a string\";\n",
        "    // a comment mentioning .unwrap() and panic!(...)\n",
        "    /* block comment .expect(\"x\") */\n",
        "    let b = a;\n",
        "}\n"
    );
    assert!(lint_source(PRELOAD, src).is_empty());
}

#[test]
fn lexer_handles_raw_strings_with_hashes() {
    let src = "fn f() {\n    let re = r#\"quoted \".unwrap()\" inside raw\"#;\n    let re2 = r\"also .expect( here\";\n}\n";
    assert!(lint_source(PRELOAD, src).is_empty());
    // …but code after the raw string on the same line is still scanned.
    let bad = "fn f() { let x = (r#\"s\"#, y.unwrap()); }\n";
    assert_eq!(rules(&lint_source(PRELOAD, bad)), ["panic-in-ffi"]);
}

#[test]
fn lexer_handles_nested_block_comments() {
    let src = "fn f() {\n    /* outer /* nested .unwrap() */ still comment panic!() */\n    let x = 1;\n}\n";
    assert!(lint_source(PRELOAD, src).is_empty());
    // Code resumes after the outermost close.
    let bad = "fn f() { /* /* x */ */ y.unwrap(); }\n";
    assert_eq!(rules(&lint_source(PRELOAD, bad)), ["panic-in-ffi"]);
}

#[test]
fn lexer_distinguishes_char_literals_from_lifetimes() {
    // A char literal containing a quote-ish payload must not derail the
    // string state machine into hiding real code.
    let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; y.unwrap(); }\n";
    assert_eq!(rules(&lint_source(PRELOAD, src)), ["panic-in-ffi"]);
}

#[test]
fn scrubbed_extern_c_is_still_detectable() {
    // String contents are blanked but delimiters stay, so `extern "C" fn`
    // survives scrubbing well enough for the extern-fn scanner.
    let src = "pub unsafe extern \"C\" fn f(b: *const u8) -> i32 {\n    args[0]\n}\n";
    let f = lint_source(PRELOAD, src);
    assert!(f.iter().any(|f| f.rule == "ffi-barrier"), "{f:?}");
    assert!(f.iter().any(|f| f.rule == "panic-in-ffi"), "{f:?}");
}

// ------------------------------------------------------------------ rendering

#[test]
fn json_output_round_trips_through_jsonlite() {
    let src = "fn f() { x.unwrap(); }\n";
    let findings = lint_source(PRELOAD, src);
    let doc = jsonlite::parse(&plfs_lint::render_json(&findings)).unwrap();
    assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
    let items = doc.get("findings").and_then(|v| v.as_array()).unwrap();
    assert_eq!(items.len(), 1);
    let item = &items[0];
    assert_eq!(
        item.get("rule").and_then(|v| v.as_str()),
        Some("panic-in-ffi")
    );
    assert_eq!(item.get("file").and_then(|v| v.as_str()), Some(PRELOAD));
    assert_eq!(item.get("line").and_then(|v| v.as_u64()), Some(1));
    assert!(item
        .get("snippet")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("unwrap"));
}
