//! Fixture triples for the PR 9 call-graph passes: each pass must fire on
//! a violating snippet, stay quiet on a clean one, and stay quiet when
//! suppressed (or, for signal-safety, annotated) with a justification —
//! the same contract the PR 4 per-line rules are held to in fixtures.rs.
//!
//! Fixture symbols are chosen from single-member alias families (`read`,
//! `write`, `readv`, …) unless the symbol-coverage matrix itself is under
//! test, so the coverage pass stays quiet in everyone else's fixtures.

use plfs_lint::{lint_files, lint_source, Finding};

const PRELOAD: &str = "crates/preload/src/lib.rs";
const PLFS: &str = "crates/plfs/src/fd.rs";

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ------------------------------------------------------------- deadlock-cycle

#[test]
fn deadlock_cycle_fires_on_ab_ba_inversion() {
    let src = "impl S {\n\
               \x20   fn a(&self) {\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       let h = self.beta.lock();\n\
               \x20       drop(h);\n\
               \x20       drop(g);\n\
               \x20   }\n\
               \x20   fn b(&self) {\n\
               \x20       let g = self.beta.lock();\n\
               \x20       let h = self.alpha.lock();\n\
               \x20       drop(h);\n\
               \x20       drop(g);\n\
               \x20   }\n\
               }\n";
    let findings = lint_source(PLFS, src);
    assert_eq!(rules(&findings), ["deadlock-cycle"]);
    assert!(findings[0].message.contains("alpha"));
    assert!(findings[0].message.contains("beta"));
}

#[test]
fn deadlock_cycle_quiet_on_consistent_order_and_self_edges() {
    // Same two classes, same order in both functions: no inversion.
    let consistent = "impl S {\n\
                      \x20   fn a(&self) {\n\
                      \x20       let g = self.alpha.lock();\n\
                      \x20       let h = self.beta.lock();\n\
                      \x20   }\n\
                      \x20   fn b(&self) {\n\
                      \x20       let g = self.alpha.lock();\n\
                      \x20       let h = self.beta.lock();\n\
                      \x20   }\n\
                      }\n";
    assert!(lint_source(PLFS, consistent).is_empty());
    // Sharded same-class reacquisition (index-ordered by convention).
    let sharded = "impl S {\n\
                   \x20   fn a(&self, pid: u64) {\n\
                   \x20       let g = self.shard(pid).lock();\n\
                   \x20       let h = self.shard(pid + 1).lock();\n\
                   \x20   }\n\
                   }\n";
    assert!(lint_source(PLFS, sharded).is_empty());
}

#[test]
fn deadlock_cycle_quiet_when_suppressed_with_reason() {
    let src = "impl S {\n\
               \x20   fn a(&self) {\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       // plfs-lint: allow(deadlock-cycle, \"b() only runs at startup before a() exists\")\n\
               \x20       let h = self.beta.lock();\n\
               \x20   }\n\
               \x20   fn b(&self) {\n\
               \x20       let g = self.beta.lock();\n\
               \x20       let h = self.alpha.lock();\n\
               \x20   }\n\
               }\n";
    assert!(lint_source(PLFS, src).is_empty());
}

// --------------------------------------------------- transitive lock-across-io

#[test]
fn lock_across_io_fires_transitively_through_a_callee() {
    let src = "impl S {\n\
               \x20   fn caller(&self) {\n\
               \x20       let g = self.map.lock();\n\
               \x20       self.helper();\n\
               \x20   }\n\
               \x20   fn helper(&self) {\n\
               \x20       self.backing.write_at(0);\n\
               \x20   }\n\
               }\n";
    let findings = lint_source(PLFS, src);
    assert_eq!(rules(&findings), ["lock-across-io"]);
    assert!(findings[0].message.contains("helper"));
    assert!(findings[0].message.contains("transitively"));
}

#[test]
fn lock_across_io_transitive_spans_files_via_lint_files() {
    // The whole point of the workspace graph: the guard is in one file,
    // the backing I/O two files away.
    let a = "pub fn caller(s: &S) {\n\
             \x20   let g = s.map.lock();\n\
             \x20   middle(s);\n\
             }\n";
    let b = "pub fn middle(s: &S) {\n\
             \x20   deep(s);\n\
             }\n\
             pub fn deep(s: &S) {\n\
             \x20   s.backing.write_at(0);\n\
             }\n";
    let findings = lint_files(&[
        ("crates/plfs/src/a.rs".to_string(), a.to_string()),
        ("crates/plfs/src/b.rs".to_string(), b.to_string()),
    ]);
    assert_eq!(rules(&findings), ["lock-across-io"]);
    assert_eq!(findings[0].file, "crates/plfs/src/a.rs");
}

#[test]
fn lock_across_io_transitive_quiet_when_guard_dropped_or_suppressed() {
    let dropped = "impl S {\n\
                   \x20   fn caller(&self) {\n\
                   \x20       let g = self.map.lock();\n\
                   \x20       drop(g);\n\
                   \x20       self.helper();\n\
                   \x20   }\n\
                   \x20   fn helper(&self) {\n\
                   \x20       self.backing.write_at(0);\n\
                   \x20   }\n\
                   }\n";
    assert!(lint_source(PLFS, dropped).is_empty());
    let suppressed = "impl S {\n\
                      \x20   fn caller(&self) {\n\
                      \x20       let g = self.map.lock();\n\
                      \x20       // plfs-lint: allow(lock-across-io, \"single-writer during recovery\")\n\
                      \x20       self.helper();\n\
                      \x20   }\n\
                      \x20   fn helper(&self) {\n\
                      \x20       self.backing.write_at(0);\n\
                      \x20   }\n\
                      }\n";
    assert!(lint_source(PLFS, suppressed).is_empty());
}

// -------------------------------------------------------------- signal-safety

#[test]
fn signal_safety_fires_on_allocation_before_resolution() {
    let src = "#[no_mangle]\n\
               pub unsafe extern \"C\" fn read(fd: c_int) -> c_int {\n\
               \x20   ffi_guard!(-1, do_read(fd))\n\
               }\n\
               unsafe fn do_read(fd: c_int) -> c_int {\n\
               \x20   let tag = String::from(\"x\");\n\
               \x20   let f = real!(read, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   f(fd)\n\
               }\n";
    let findings = lint_source(PRELOAD, src);
    assert_eq!(rules(&findings), ["signal-safety"]);
    assert!(findings[0].message.contains("before dlsym-next resolution"));
}

#[test]
fn signal_safety_fires_on_reentry_and_guard_binding() {
    // Calling back into an interposed symbol pre-resolution.
    let reenter = "#[no_mangle]\n\
                   pub unsafe extern \"C\" fn write(fd: c_int) -> c_int {\n\
                   \x20   ffi_guard!(-1, do_write(fd))\n\
                   }\n\
                   unsafe fn do_write(fd: c_int) -> c_int {\n\
                   \x20   write(fd)\n\
                   }\n";
    let findings = lint_source(PRELOAD, reenter);
    assert_eq!(rules(&findings), ["signal-safety"]);
    assert!(findings[0].message.contains("recurses"));
    // Binding a lock guard pre-resolution.
    let locked = "#[no_mangle]\n\
                  pub unsafe extern \"C\" fn readv(fd: c_int) -> c_int {\n\
                  \x20   ffi_guard!(-1, do_readv(fd))\n\
                  }\n\
                  unsafe fn do_readv(fd: c_int) -> c_int {\n\
                  \x20   let t = table.lock();\n\
                  \x20   let f = real!(readv, unsafe extern \"C\" fn(c_int) -> c_int);\n\
                  \x20   f(fd)\n\
                  }\n";
    assert_eq!(rules(&lint_source(PRELOAD, locked)), ["signal-safety"]);
}

#[test]
fn signal_safety_quiet_when_resolution_comes_first() {
    let src = "#[no_mangle]\n\
               pub unsafe extern \"C\" fn read(fd: c_int) -> c_int {\n\
               \x20   ffi_guard!(-1, do_read(fd))\n\
               }\n\
               unsafe fn do_read(fd: c_int) -> c_int {\n\
               \x20   let f = real!(read, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   let tag = String::from(\"x\");\n\
               \x20   f(fd)\n\
               }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}

#[test]
fn signal_safety_quiet_with_signal_safe_annotation() {
    let src = "#[no_mangle]\n\
               pub unsafe extern \"C\" fn read(fd: c_int) -> c_int {\n\
               \x20   ffi_guard!(-1, do_read(fd))\n\
               }\n\
               // signal-safe: init latch makes nested calls fall through to libc\n\
               unsafe fn do_read(fd: c_int) -> c_int {\n\
               \x20   let tag = String::from(\"x\");\n\
               \x20   let f = real!(read, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   f(fd)\n\
               }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
    // A bare `signal-safe:` with no justification does not count.
    let bare = src.replace(
        "// signal-safe: init latch makes nested calls fall through to libc",
        "// signal-safe:",
    );
    assert_eq!(rules(&lint_source(PRELOAD, &bare)), ["signal-safety"]);
}

// --------------------------------------------------------------- errno-clobber

#[test]
fn errno_clobber_fires_between_set_errno_and_minus_one() {
    let src = "unsafe fn do_x(fd: c_int) -> c_int {\n\
               \x20   let f = real!(close, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   set_errno(9);\n\
               \x20   f(fd);\n\
               \x20   -1\n\
               }\n";
    let findings = lint_source(PRELOAD, src);
    assert_eq!(rules(&findings), ["errno-clobber"]);
    assert!(findings[0].message.contains("set_errno"));
}

#[test]
fn errno_clobber_fires_between_real_return_capture_and_return() {
    let src = "unsafe fn do_y(fd: c_int) -> c_int {\n\
               \x20   let f = real!(close, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   let ret = f(fd);\n\
               \x20   cleanup();\n\
               \x20   ret\n\
               }\n\
               unsafe fn cleanup() {\n\
               \x20   set_errno(0);\n\
               }\n";
    let findings = lint_source(PRELOAD, src);
    assert_eq!(rules(&findings), ["errno-clobber"]);
    assert!(findings[0].message.contains("ret"));
}

#[test]
fn errno_clobber_quiet_on_adjacent_return_and_success_path_bookkeeping() {
    // set_errno immediately followed by the -1 return.
    let adjacent = "unsafe fn do_x(fd: c_int) -> c_int {\n\
                    \x20   set_errno(9);\n\
                    \x20   -1\n\
                    }\n";
    assert!(lint_source(PRELOAD, adjacent).is_empty());
    // Bookkeeping nested under the success check runs when errno is dead.
    let success = "unsafe fn do_y(fd: c_int) -> c_int {\n\
                   \x20   let f = real!(close, unsafe extern \"C\" fn(c_int) -> c_int);\n\
                   \x20   let ret = f(fd);\n\
                   \x20   if ret >= 0 {\n\
                   \x20       cleanup();\n\
                   \x20   }\n\
                   \x20   ret\n\
                   }\n\
                   unsafe fn cleanup() {\n\
                   \x20   set_errno(0);\n\
                   }\n";
    assert!(lint_source(PRELOAD, success).is_empty());
}

#[test]
fn errno_clobber_quiet_when_suppressed_with_reason() {
    let src = "unsafe fn do_x(fd: c_int) -> c_int {\n\
               \x20   let f = real!(close, unsafe extern \"C\" fn(c_int) -> c_int);\n\
               \x20   set_errno(9);\n\
               \x20   // plfs-lint: allow(errno-clobber, \"f is a pure syscall-free stub in this build\")\n\
               \x20   f(fd);\n\
               \x20   -1\n\
               }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}

// ------------------------------------------------------------- symbol-coverage

#[test]
fn symbol_coverage_catches_removed_open64() {
    // The acceptance-criterion fixture: open interposed, its 64/at twins
    // missing — an LFS-built application would silently bypass the shim.
    let src = "#[no_mangle]\n\
               pub unsafe extern \"C\" fn open(p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_open(p))\n\
               }\n\
               unsafe fn do_open(p: *const c_char) -> c_int {\n\
               \x20   0\n\
               }\n";
    let findings = lint_source(PRELOAD, src);
    assert_eq!(rules(&findings), ["symbol-coverage"]);
    assert!(findings[0].message.contains("open64"));
    assert!(findings[0].message.contains("openat64"));
}

#[test]
fn symbol_coverage_catches_unknown_symbol_and_twin_drift() {
    // A symbol missing from the matrix entirely.
    let unknown = "#[no_mangle]\n\
                   pub unsafe extern \"C\" fn bogus_sym(fd: c_int) -> c_int {\n\
                   \x20   ffi_guard!(-1, do_bogus(fd))\n\
                   }\n\
                   unsafe fn do_bogus(fd: c_int) -> c_int {\n\
                   \x20   0\n\
                   }\n";
    let findings = lint_source(PRELOAD, unknown);
    assert_eq!(rules(&findings), ["symbol-coverage"]);
    assert!(findings[0].message.contains("bogus_sym"));
    // Twins drifting to different dispatchers.
    let drift = "#[no_mangle]\n\
                 pub unsafe extern \"C\" fn open(p: *const c_char) -> c_int {\n\
                 \x20   ffi_guard!(-1, do_open(p))\n\
                 }\n\
                 #[no_mangle]\n\
                 pub unsafe extern \"C\" fn open64(p: *const c_char) -> c_int {\n\
                 \x20   ffi_guard!(-1, do_open64(p))\n\
                 }\n\
                 #[no_mangle]\n\
                 pub unsafe extern \"C\" fn openat(d: c_int, p: *const c_char) -> c_int {\n\
                 \x20   ffi_guard!(-1, do_openat(d, p))\n\
                 }\n\
                 #[no_mangle]\n\
                 pub unsafe extern \"C\" fn openat64(d: c_int, p: *const c_char) -> c_int {\n\
                 \x20   ffi_guard!(-1, do_openat(d, p))\n\
                 }\n\
                 unsafe fn do_open(p: *const c_char) -> c_int {\n\
                 \x20   0\n\
                 }\n\
                 unsafe fn do_open64(p: *const c_char) -> c_int {\n\
                 \x20   0\n\
                 }\n\
                 unsafe fn do_openat(d: c_int, p: *const c_char) -> c_int {\n\
                 \x20   0\n\
                 }\n";
    let findings = lint_source(PRELOAD, drift);
    assert_eq!(rules(&findings), ["symbol-coverage"]);
    assert!(findings[0].message.contains("do_open64"));
}

#[test]
fn symbol_coverage_quiet_on_complete_family() {
    let src = "#[no_mangle]\n\
               pub unsafe extern \"C\" fn open(p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_open(p))\n\
               }\n\
               #[no_mangle]\n\
               pub unsafe extern \"C\" fn open64(p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_open(p))\n\
               }\n\
               #[no_mangle]\n\
               pub unsafe extern \"C\" fn openat(d: c_int, p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_openat(d, p))\n\
               }\n\
               #[no_mangle]\n\
               pub unsafe extern \"C\" fn openat64(d: c_int, p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_openat(d, p))\n\
               }\n\
               unsafe fn do_open(p: *const c_char) -> c_int {\n\
               \x20   0\n\
               }\n\
               unsafe fn do_openat(d: c_int, p: *const c_char) -> c_int {\n\
               \x20   0\n\
               }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}

#[test]
fn symbol_coverage_quiet_when_suppressed_with_reason() {
    let src = "#[no_mangle] // plfs-lint: allow(symbol-coverage, \"prototype build: LFS twins land with the next batch\")\n\
               pub unsafe extern \"C\" fn open(p: *const c_char) -> c_int {\n\
               \x20   ffi_guard!(-1, do_open(p))\n\
               }\n\
               unsafe fn do_open(p: *const c_char) -> c_int {\n\
               \x20   0\n\
               }\n";
    assert!(lint_source(PRELOAD, src).is_empty());
}
