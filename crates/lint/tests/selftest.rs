//! Self-test: the linter runs over the live workspace and must come back
//! clean. This is the enforcement teeth for the acceptance criterion "zero
//! un-annotated Relaxed orderings and zero panic-capable calls reachable
//! from `extern \"C\"`": any regression in the tree fails this test even
//! before the `verify.sh` / CI gate runs.

use std::path::Path;

#[test]
fn empty_root_is_an_error_not_a_clean_pass() {
    // A mistyped root (CI running from the wrong directory) must fail
    // loudly, not report a vacuous "0 findings".
    let err = plfs_lint::lint_workspace(Path::new("/nonexistent-plfs-root")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = plfs_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean, got {} findings:\n{}",
        findings.len(),
        plfs_lint::render_text(&findings)
    );
}
