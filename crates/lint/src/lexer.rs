//! A comment- and string-aware scrubber for Rust source.
//!
//! `syn` is not available offline, and the rules in this crate are lexical,
//! not syntactic — they need to know *which bytes are code* and *which bytes
//! are comments*, nothing more. This module walks a source file once with a
//! small state machine and produces two same-shaped views of every line:
//!
//! * **code** — the original text with comments blanked to spaces and string
//!   / char literal *contents* blanked to spaces. The quote delimiters are
//!   kept, so patterns like `extern "C" fn` still match (`extern "" fn`
//!   would not — the rules match on `extern "` + `fn` instead), while a
//!   string containing `".unwrap()"` can never trip a rule.
//! * **comment** — the comment text of the line (delimiters stripped),
//!   which is where suppressions and justification annotations live.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings `r"…"` / `r#"…"#` (any number of hashes), byte and
//! raw byte strings, char literals vs. lifetimes.

/// One source line, split into its code view and its comment text.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and literal contents blanked to spaces.
    /// Same character count as the original line.
    pub code: String,
    /// Concatenated comment text on this line, delimiters stripped.
    pub comment: String,
    /// The original line, untouched (used for finding snippets).
    pub raw: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside a `"…"` string (escape handling inline).
    Str,
    /// Inside a raw string with `n` hashes: ends at `"` + n `#`.
    RawStr(u32),
    /// Inside a char literal `'…'`.
    Char,
}

/// Scrub `src` into per-line code/comment views.
pub fn scrub(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comment = String::with_capacity(src.len());
    let mut state = State::Code;
    let mut i = 0usize;

    // Push a char to one view and a space to the other, newlines to both.
    macro_rules! emit {
        (code $c:expr) => {{
            code.push($c);
            comment.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (comment $c:expr) => {{
            comment.push($c);
            code.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (blank $c:expr) => {{
            // Literal contents: blank in both views.
            let fill = if $c == '\n' { '\n' } else { ' ' };
            code.push(fill);
            comment.push(fill);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    emit!(blank c);
                    emit!(blank '/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    emit!(blank c);
                    emit!(blank '*');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    emit!(code c);
                    i += 1;
                } else if is_raw_str_start(&chars, i) {
                    // r / br / b prefix, then hashes, then the quote.
                    let mut j = i;
                    while chars[j] != '"' && chars[j] != '#' {
                        emit!(code chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars[j] == '#' {
                        emit!(code chars[j]);
                        hashes += 1;
                        j += 1;
                    }
                    emit!(code '"');
                    i = j + 1;
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal or lifetime. A char literal is `'` +
                    // (escape or single char) + `'`; a lifetime never has a
                    // closing quote right after its first character-run.
                    if next == Some('\\') {
                        state = State::Char;
                        emit!(code c);
                        i += 1;
                    } else if chars.get(i + 2).copied() == Some('\'') && next.is_some() {
                        // 'x' — blank the payload, keep both quotes.
                        emit!(code '\'');
                        emit!(blank 'x');
                        emit!(code '\'');
                        i += 3;
                    } else {
                        // Lifetime: plain code.
                        emit!(code c);
                        i += 1;
                    }
                } else {
                    emit!(code c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    emit!(code '\n');
                } else {
                    emit!(comment c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit!(blank c);
                    emit!(blank '*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit!(blank c);
                    emit!(blank '/');
                    i += 2;
                } else {
                    if c == '\n' {
                        emit!(code '\n');
                    } else {
                        emit!(comment c);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && next.is_some() {
                    emit!(blank c);
                    emit!(blank 'x');
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    emit!(code c);
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    emit!(code c);
                    for k in 0..hashes as usize {
                        emit!(code chars[i + 1 + k]);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && next.is_some() {
                    emit!(blank c);
                    emit!(blank 'x');
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    emit!(code c);
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
        }
    }

    let raws: Vec<&str> = src.lines().collect();
    code.lines()
        .zip(comment.lines())
        .enumerate()
        .map(|(n, (c, m))| Line {
            code: c.to_string(),
            comment: m.trim().to_string(),
            raw: raws.get(n).unwrap_or(&"").to_string(),
        })
        .collect()
}

/// Does a raw (byte) string literal start at `chars[i]`?
/// Patterns: `r"`, `r#`-run-`"`, `br"`, `br#`-run-`"`, `b"` (plain byte
/// string — treated as an ordinary string by the caller, so excluded here).
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`for"` can't happen, but
    // `hdr#` etc. must not be misread).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the raw string with `hashes` hashes close at this `"`?
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if chars.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}
