//! SARIF 2.1.0 rendering and schema checking (via `jsonlite`).
//!
//! The emitted document is the minimal profile GitHub code scanning
//! accepts: one run, one driver, a `rules` array carrying every rule id
//! with its short description, and one `result` per finding with a
//! `ruleIndex` back-reference and a physical location (workspace-relative
//! URI + 1-based start line + snippet). [`check_sarif`] validates exactly
//! the invariants [`render_sarif`] promises, so `verify.sh` can round-trip
//! the output through an independent parse instead of trusting the
//! renderer.

use crate::{rule_description, Finding, RULES};
use jsonlite::Value;

/// Render findings as a SARIF 2.1.0 document.
pub fn render_sarif(findings: &[Finding]) -> String {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|r| {
            Value::object().with("id", *r).with(
                "shortDescription",
                Value::object().with("text", rule_description(r)),
            )
        })
        .collect();
    let results: Vec<Value> = findings
        .iter()
        .map(|f| {
            let rule_index = RULES.iter().position(|r| *r == f.rule).unwrap_or(0);
            Value::object()
                .with("ruleId", f.rule)
                .with("ruleIndex", rule_index)
                .with("level", "error")
                .with("message", Value::object().with("text", f.message.as_str()))
                .with(
                    "locations",
                    vec![Value::object().with(
                        "physicalLocation",
                        Value::object()
                            .with(
                                "artifactLocation",
                                Value::object()
                                    .with("uri", f.file.as_str())
                                    .with("uriBaseId", "SRCROOT"),
                            )
                            .with(
                                "region",
                                Value::object().with("startLine", f.line).with(
                                    "snippet",
                                    Value::object().with("text", f.snippet.as_str()),
                                ),
                            ),
                    )],
                )
        })
        .collect();
    Value::object()
        .with("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .with("version", "2.1.0")
        .with(
            "runs",
            vec![Value::object()
                .with(
                    "tool",
                    Value::object().with(
                        "driver",
                        Value::object()
                            .with("name", "plfs-lint")
                            .with("informationUri", "https://github.com/plfs/plfs-core")
                            .with("rules", rules),
                    ),
                )
                .with("results", results)],
        )
        .to_json_pretty()
}

/// Parse a SARIF document and check the invariants this crate's renderer
/// guarantees. Returns the number of results on success.
pub fn check_sarif(text: &str) -> Result<usize, String> {
    let doc = jsonlite::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if doc.get("version").and_then(Value::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    if doc.get("$schema").and_then(Value::as_str).is_none() {
        return Err("$schema is missing".to_string());
    }
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("runs must be an array")?;
    if runs.len() != 1 {
        return Err(format!("expected exactly 1 run, got {}", runs.len()));
    }
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("runs[0].tool.driver is missing")?;
    if driver.get("name").and_then(Value::as_str) != Some("plfs-lint") {
        return Err("tool.driver.name must be \"plfs-lint\"".to_string());
    }
    let rules = driver
        .get("rules")
        .and_then(Value::as_array)
        .ok_or("tool.driver.rules must be an array")?;
    for (i, r) in rules.iter().enumerate() {
        if r.get("id").and_then(Value::as_str).is_none() {
            return Err(format!("rules[{i}] lacks a string id"));
        }
    }
    let results = run
        .get("results")
        .and_then(Value::as_array)
        .ok_or("runs[0].results must be an array")?;
    for (i, res) in results.iter().enumerate() {
        let rule_id = res
            .get("ruleId")
            .and_then(Value::as_str)
            .ok_or(format!("results[{i}].ruleId missing"))?;
        let idx = res
            .get("ruleIndex")
            .and_then(Value::as_u64)
            .ok_or(format!("results[{i}].ruleIndex missing"))?;
        let declared = rules
            .get(idx as usize)
            .and_then(|r| r.get("id"))
            .and_then(Value::as_str)
            .ok_or(format!("results[{i}].ruleIndex {idx} out of range"))?;
        if declared != rule_id {
            return Err(format!(
                "results[{i}]: ruleIndex {idx} points at `{declared}`, not `{rule_id}`"
            ));
        }
        if res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .is_none()
        {
            return Err(format!("results[{i}].message.text missing"));
        }
        let loc = res
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l.first().cloned())
            .ok_or(format!("results[{i}].locations missing"))?;
        let phys = loc
            .get("physicalLocation")
            .ok_or(format!("results[{i}] lacks physicalLocation"))?;
        if phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .is_none()
        {
            return Err(format!("results[{i}].artifactLocation.uri missing"));
        }
        let line = phys
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_u64)
            .ok_or(format!("results[{i}].region.startLine missing"))?;
        if line == 0 {
            return Err(format!("results[{i}].region.startLine must be 1-based"));
        }
    }
    Ok(results.len())
}
