//! The six project-specific rules. Each takes a [`FileCtx`] and appends
//! findings; rule scoping by path lives here so the engine stays generic.

use crate::{find_word, is_ident_byte, FileCtx, Finding};

pub(crate) fn in_preload(p: &str) -> bool {
    p.contains("crates/preload/src")
}
fn in_ldplfs(p: &str) -> bool {
    p.contains("crates/ldplfs/src")
}
pub(crate) fn in_plfs(p: &str) -> bool {
    p.contains("crates/plfs/src")
}

/// **panic-in-ffi** — the shim crates (`crates/preload`, the real
/// `LD_PRELOAD` cdylib, and `crates/ldplfs`, the simulated shim) run inside
/// unsuspecting host applications; a panic there aborts someone else's
/// process. No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` anywhere in shim code, and no slice indexing inside
/// `extern "C"` function bodies (indexing panics on out-of-bounds).
/// `debug_assert!` is allowed: it compiles out of release builds.
pub fn panic_in_ffi(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "panic-in-ffi";
    if !in_preload(&ctx.path) && !in_ldplfs(&ctx.path) {
        return;
    }
    const CALLS: &[(&str, &str)] = &[
        (".unwrap()", "unwrap() panics on Err/None"),
        (".expect(", "expect() panics on Err/None"),
        ("panic!", "explicit panic"),
        ("unreachable!", "unreachable!() panics when reached"),
        ("todo!", "todo!() always panics"),
        ("unimplemented!", "unimplemented!() always panics"),
    ];
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.line_in_test(i) || ctx.suppressed(RULE, i) {
            continue;
        }
        let code = &line.code;
        for (pat, why) in CALLS {
            let hit = if pat.starts_with('.') {
                code.contains(pat)
            } else {
                // Macro names need an identifier boundary on the left so
                // `debug_assert!` never matches and `std::panic::` paths
                // don't false-positive on the `panic` word.
                macro_use(code, pat.trim_end_matches('!'))
            };
            if hit {
                out.push(ctx.finding(
                    RULE,
                    i,
                    format!("{why}; a panic in the shim aborts the host application"),
                ));
                break;
            }
        }
    }
    // Slice indexing, only inside extern "C" bodies (the blast radius that
    // motivates the rule); elsewhere in the shim it is reviewed case by
    // case via the call patterns above.
    for span in ctx.fns.iter().filter(|s| s.is_extern_c) {
        for i in span.start..=span.end.min(ctx.lines.len() - 1) {
            if ctx.line_in_test(i) || ctx.suppressed(RULE, i) {
                continue;
            }
            if let Some(col) = indexing_site(&ctx.lines[i].code) {
                out.push(ctx.finding(
                    RULE,
                    i,
                    format!(
                        "slice/array indexing at column {} inside an extern \"C\" fn \
                         panics on out-of-bounds; use get()/checked access",
                        col + 1
                    ),
                ));
            }
        }
    }
}

/// Is `name!` invoked anywhere on this line? Scans every identifier-
/// boundary occurrence of `name`, requiring the `!` sigil right after, so
/// `std::panic::catch_unwind` (no `!`) and `debug_assert!` (left boundary)
/// never match `panic`.
fn macro_use(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(name) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        if before_ok && code[at + name.len()..].starts_with('!') {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Find an indexing expression `expr[…]`: a `[` directly preceded by an
/// identifier character, `)` or `]`. Attribute (`#[…]`) and array-type /
/// array-literal brackets are preceded by other characters.
fn indexing_site(code: &str) -> Option<usize> {
    let b = code.as_bytes();
    (1..b.len()).find(|&i| {
        b[i] == b'[' && (is_ident_byte(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']')
    })
}

/// **ffi-barrier** — every `extern "C"` definition in `crates/preload`
/// must route through the `ffi_guard!` panic barrier so a residual panic
/// becomes `errno = EIO; return -1` instead of unwinding into foreign
/// stack frames (undefined behavior, in practice an abort).
pub fn ffi_barrier(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "ffi-barrier";
    if !in_preload(&ctx.path) {
        return;
    }
    for span in ctx.fns.iter().filter(|s| s.is_extern_c) {
        if span.end == span.start && !ctx.lines[span.start].code.contains('{') {
            continue; // declaration in a foreign block, no body to guard
        }
        if ctx.line_in_test(span.start) || ctx.suppressed(RULE, span.start) {
            continue;
        }
        let body_has_guard = (span.start..=span.end.min(ctx.lines.len() - 1))
            .any(|i| ctx.lines[i].code.contains("ffi_guard!"));
        if !body_has_guard {
            out.push(
                ctx.finding(
                    RULE,
                    span.start,
                    "extern \"C\" fn does not use ffi_guard!: a panic here unwinds \
                 into the host application"
                        .to_string(),
                ),
            );
        }
    }
}

/// **errno-discipline** — POSIX callers see only the `-1` return; the
/// actual error lives in errno. Any `crates/preload` function that can
/// return `-1` must set errno on that path (directly via `set_errno` or
/// structurally via `ffi_guard!`, whose helpers map `Err(e)` to errno).
pub fn errno_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "errno-discipline";
    if !in_preload(&ctx.path) {
        return;
    }
    for span in &ctx.fns {
        if span.end <= span.start {
            continue;
        }
        if ctx.line_in_test(span.start) || ctx.suppressed(RULE, span.start) {
            continue;
        }
        let end = span.end.min(ctx.lines.len() - 1);
        let mut returns_minus_one = None;
        let mut sets_errno = false;
        for i in span.start..=end {
            let code = &ctx.lines[i].code;
            if code.contains("set_errno") || code.contains("ffi_guard!") {
                sets_errno = true;
            }
            if returns_minus_one.is_none() && mentions_minus_one(code) {
                returns_minus_one = Some(i);
            }
        }
        if let (Some(i), false) = (returns_minus_one, sets_errno) {
            out.push(
                ctx.finding(
                    RULE,
                    i,
                    "function returns -1 without setting errno anywhere; POSIX \
                 callers will read a stale errno"
                        .to_string(),
                ),
            );
        }
    }
}

/// Does this code line contain a literal `-1` (the POSIX error sentinel)?
pub(crate) fn mentions_minus_one(code: &str) -> bool {
    let b = code.as_bytes();
    (0..b.len().saturating_sub(1)).any(|i| {
        b[i] == b'-'
            && b[i + 1] == b'1'
            && !is_ident_byte(b.get(i + 2).copied().unwrap_or(b' '))
            // exclude arithmetic like `x - 10` handled above, and `n-1`
            // index math is still a -1 … keep it simple: require the char
            // before `-` to not be an identifier byte or digit, so `i-1`
            // (arithmetic) still counts, but `e-12` floats do not.
            && b.get(i + 2).copied() != Some(b'.')
    })
}

/// **relaxed-ordering-audit** — `Ordering::Relaxed` gives no inter-thread
/// ordering at all; each use is correct only for a *reason* (counter-only,
/// single-writer, guarded by an Acquire elsewhere, …). That reason must be
/// written down: a `// relaxed: <why>` comment on the same or previous
/// line, or a full suppression. Applies to the whole workspace.
pub fn relaxed_ordering_audit(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "relaxed-ordering-audit";
    for (i, line) in ctx.lines.iter().enumerate() {
        if !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        if ctx.line_in_test(i) || ctx.suppressed(RULE, i) {
            continue;
        }
        let near = ctx.nearby_comments(i);
        let justified = near
            .find("relaxed:")
            .is_some_and(|p| !near[p + "relaxed:".len()..].trim().is_empty());
        if !justified {
            out.push(
                ctx.finding(
                    RULE,
                    i,
                    "Ordering::Relaxed without a `// relaxed: <why>` justification; \
                 say why no ordering is needed here"
                        .to_string(),
                ),
            );
        }
    }
}

/// **lock-across-io** — in `crates/plfs`, holding a mutex/rwlock guard
/// across a backing-store call serializes I/O behind the lock (PR 2 fixed
/// exactly this in the read path's handle cache). Lexically: a guard bound
/// by `let [mut] g = <expr>.lock();` / `.read();` / `.write();` is live
/// until its enclosing block closes or `drop(g)`; any line in that span
/// that mentions `backing` is a finding.
pub fn lock_across_io(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "lock-across-io";
    if !in_plfs(&ctx.path) {
        return;
    }
    // (guard name, brace depth at binding) for live guards.
    let mut live: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    for (i, line) in ctx.lines.iter().enumerate() {
        let code = &line.code;
        let in_test = ctx.line_in_test(i);
        if !in_test {
            if let Some(name) = guard_binding(code) {
                // Recorded at the *current* depth: the binding dies when
                // the block it lives in closes.
                live.push((name, depth));
            }
            for (name, _) in live.clone() {
                if code.contains(&format!("drop({name})")) {
                    live.retain(|(n, _)| *n != name);
                }
            }
            if !live.is_empty()
                && find_word(code, "backing").is_some()
                && !ctx.suppressed(RULE, i)
                && guard_binding(code).is_none()
            {
                let holders: Vec<&str> = live.iter().map(|(n, _)| n.as_str()).collect();
                out.push(ctx.finding(
                    RULE,
                    i,
                    format!(
                        "backing-store call while lock guard `{}` is live; \
                         do the I/O before taking the lock or drop() first",
                        holders.join("`, `")
                    ),
                ));
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    live.retain(|(_, d)| *d <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Parse `let [mut] NAME = <expr>.lock();` (or `.read();` / `.write();`,
/// empty argument lists only, so `file.read(buf)` never matches). Returns
/// the bound name.
pub(crate) fn guard_binding(code: &str) -> Option<String> {
    let let_at = find_word(code, "let")?;
    let rest = &code[let_at + 3..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let tail = &code[let_at..];
    let locks = [".lock();", ".read();", ".write();", ".lock().unwrap();"];
    if locks.iter().any(|p| tail.contains(p)) {
        Some(name)
    } else {
        None
    }
}

/// **no-direct-backing-io** — every byte `crates/plfs` reads or writes
/// must flow through the `Backing` trait so fault injection (`faults.rs`)
/// and the in-memory backing stay complete. Only `backing.rs` (the trait's
/// real-FS implementation) may touch `std::fs`.
pub fn no_direct_backing_io(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const RULE: &str = "no-direct-backing-io";
    if !in_plfs(&ctx.path) || ctx.path.ends_with("backing.rs") {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.line_in_test(i) || ctx.suppressed(RULE, i) {
            continue;
        }
        let code = &line.code;
        // `File` at an identifier boundary, so `ReadFile::open` /
        // `WriteFile::open_with` (the container layer's own types) pass.
        let std_file = find_word(code, "File").is_some_and(|at| {
            code[at..].starts_with("File::open") || code[at..].starts_with("File::create")
        });
        let direct_fs = find_word(code, "fs").is_some_and(|at| code[at..].starts_with("fs::"))
            || code.contains("std::fs")
            || std_file
            || find_word(code, "OpenOptions").is_some();
        if direct_fs {
            out.push(
                ctx.finding(
                    RULE,
                    i,
                    "direct std::fs I/O in crates/plfs bypasses the Backing \
                 abstraction (fault injection, MemBacking); route through \
                 the backing trait"
                        .to_string(),
                ),
            );
        }
    }
}
