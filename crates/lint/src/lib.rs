//! # plfs-lint — workspace-invariant static analysis
//!
//! LDPLFS delivers "improved I/O without application modification" only if
//! the preloaded shim can never crash the host process, and the PR 1–3
//! concurrency work (relaxed atomics, lock sharding, a lock-free trace
//! ring) only stays correct if its invariants outlive the author. This
//! crate enforces those invariants mechanically, with a comment- and
//! string-aware lexical scanner (see [`lexer`]), a small per-file rule
//! engine, and — since PR 9 — a syntactic workspace [`callgraph`] that
//! four dataflow passes walk for cross-function and cross-crate facts.
//!
//! ## Per-file rules
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `panic-in-ffi` | `crates/preload`, `crates/ldplfs` | no `unwrap`/`expect`/`panic!`-family calls in shim code; no slice indexing inside `extern "C"` bodies |
//! | `ffi-barrier` | `crates/preload` | every `extern "C"` entry point routes through `ffi_guard!` (catch_unwind → errno) |
//! | `errno-discipline` | `crates/preload` | any function returning `-1` must set errno (directly or via `ffi_guard!`) |
//! | `relaxed-ordering-audit` | whole workspace | every `Ordering::Relaxed` carries a `// relaxed: <why>` justification |
//! | `lock-across-io` | `crates/plfs` | no `lock()`/`read()`/`write()` guard held across a backing-store call — direct, or (PR 9) transitively through resolved callees |
//! | `no-direct-backing-io` | `crates/plfs` (except `backing.rs`) | file I/O goes through the `Backing` trait, never `std::fs` directly |
//!
//! ## Call-graph passes
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `deadlock-cycle` | `crates/plfs` | the per-crate lock-order graph (lock class held → lock class acquired, including acquisitions by transitive callees) is acyclic; same-class self-edges are exempt (sharded siblings lock in index order by convention) |
//! | `signal-safety` | `crates/preload` | on every path from an interposed `#[no_mangle] extern "C"` entry point, no allocation/formatting, no lock-guard binding, and no re-entry into an interposed symbol before the `real!`/`dlsym` next-symbol resolution; escape hatch: `// signal-safe: <why>` within three lines above the `fn` |
//! | `errno-clobber` | `crates/preload` | nothing that can overwrite errno (a `real!` call, a call through a `real!`-bound local, or a callee that sets errno) runs between `set_errno(e)` and the `-1` return, or between capturing a real libc return value and returning it |
//! | `symbol-coverage` | `crates/preload` | the interposed symbol set matches the declarative alias-family matrix: no family partially covered (e.g. `open` without `open64`), no unknown symbol outside the matrix, and 64-bit/`at`-twins dispatch to the same `do_*` handler |
//!
//! The graph is deliberately syntactic and conservative: plain calls
//! resolve same-file → same-crate → workspace-unique; method and
//! path-qualified calls resolve within the caller's crate only and never
//! through a blocklist of generic names (`get`, `insert`, `run`, …).
//! Unresolved calls contribute no edges, so the passes under-approximate
//! rather than guess.
//!
//! ## Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line
//! immediately above:
//!
//! ```text
//! // plfs-lint: allow(lock-across-io, "seed happens once under the reader
//! // lock on purpose: racing seeders would double-merge")
//! ```
//!
//! The justification string is **required** and must be non-empty — a bare
//! `allow(rule)` is itself a finding. `relaxed-ordering-audit` also accepts
//! the lighter-weight `// relaxed: <why>` annotation, since every atomic
//! site needs one and the full suppression form would drown the code.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt from
//! every rule: tests are allowed to unwrap.
//!
//! ## Output
//!
//! Findings render as text (`render_text`), JSON (`render_json`), or SARIF
//! 2.1.0 (`render_sarif`) for code-scanning UIs; `check_sarif` is an
//! independent validator the CI round-trips every report through.

#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
mod passes;
mod rules;
mod sarif;

pub use sarif::{check_sarif, render_sarif};

use lexer::Line;
use rayon::prelude::*;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `panic-in-ffi`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation of the violated invariant.
    pub message: String,
}

/// All rule identifiers, in report order. `bad-suppression` is the
/// engine's own meta-rule: an `allow(...)` without a justification string.
pub const RULES: &[&str] = &[
    "panic-in-ffi",
    "ffi-barrier",
    "errno-discipline",
    "relaxed-ordering-audit",
    "lock-across-io",
    "no-direct-backing-io",
    "deadlock-cycle",
    "signal-safety",
    "errno-clobber",
    "symbol-coverage",
    "bad-suppression",
];

/// One-line description per rule id, used by the SARIF `rules` array.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "panic-in-ffi" => "no panic-capable calls in shim code",
        "ffi-barrier" => "every preload extern \"C\" fn routes through ffi_guard!",
        "errno-discipline" => "functions returning -1 must set errno",
        "relaxed-ordering-audit" => "every Ordering::Relaxed carries a `// relaxed:` note",
        "lock-across-io" => "no lock guard held across backing-store I/O (directly or via callees)",
        "no-direct-backing-io" => "crates/plfs I/O goes through the Backing trait",
        "deadlock-cycle" => "no lock-order inversion cycles across lock classes",
        "signal-safety" => {
            "no allocation, formatting, held locks or interposed-symbol re-entry \
             before dlsym-next resolution in the preload shim"
        }
        "errno-clobber" => "no errno-clobbering call between set_errno/libc return and the return",
        "symbol-coverage" => "every interposed symbol's alias family is fully covered",
        "bad-suppression" => "suppressions must carry a non-empty justification",
        _ => "project-specific invariant",
    }
}

/// One parsed `plfs-lint: allow(rule, "why")` suppression.
#[derive(Debug, Clone)]
struct Suppression {
    rule: String,
    /// Empty justification is a violation in its own right.
    has_reason: bool,
    line: usize,
}

/// A contiguous function span in the scrubbed source.
#[derive(Debug, Clone)]
pub(crate) struct FnSpan {
    /// 0-based line of the `fn` keyword.
    pub(crate) start: usize,
    /// 0-based line of the closing brace (inclusive).
    pub(crate) end: usize,
    pub(crate) is_extern_c: bool,
    /// Identifier after `fn`; empty for fn-pointer types (`fn(c_int) -> …`).
    pub(crate) name: String,
    /// `#[no_mangle]` on the same or one of the three preceding lines —
    /// i.e. an interposition entry point rather than an internal helper.
    pub(crate) no_mangle: bool,
}

/// Everything the rules need to know about one file.
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub(crate) lines: Vec<Line>,
    /// `in_test[i]` — line `i` is inside `#[cfg(test)]` / `#[test]` code.
    pub(crate) in_test: Vec<bool>,
    pub(crate) suppressions: Vec<Suppression>,
    pub(crate) fns: Vec<FnSpan>,
}

impl FileCtx {
    /// Build the context for one file's source text.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let lines = lexer::scrub(src);
        let in_test = mark_test_lines(&lines);
        let suppressions = parse_suppressions(&lines);
        let fns = find_fn_spans(&lines);
        FileCtx {
            path: path.to_string(),
            lines,
            in_test,
            suppressions,
            fns,
        }
    }

    pub(crate) fn line_in_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Is a finding of `rule` on 0-based line `i` suppressed (same line or
    /// the line above), with a non-empty justification?
    pub(crate) fn suppressed(&self, rule: &str, i: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.has_reason && (s.line == i || s.line + 1 == i))
    }

    /// Comment text of line `i` and the line above, joined — used by the
    /// `// relaxed:` annotation check.
    pub(crate) fn nearby_comments(&self, i: usize) -> String {
        let mut out = String::new();
        if i > 0 {
            out.push_str(&self.lines[i - 1].comment);
            out.push(' ');
        }
        out.push_str(&self.lines[i].comment);
        out
    }

    pub(crate) fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        Finding {
            file: self.path.clone(),
            line: i + 1,
            rule,
            snippet: self.lines[i].raw.trim().to_string(),
            message,
        }
    }
}

/// Mark lines belonging to test code: a `#[cfg(test)]`-attributed item
/// (typically `mod tests`) or a `#[test]` / `#[bench]` function, tracked by
/// brace depth from the attribute to the close of the item's block.
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[bench]")
            || code.contains("#[cfg(all(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Scan forward for the item's opening brace, then to its close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        'scan: while j < lines.len() {
            in_test[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            in_test[j] = true;
                            break 'scan;
                        }
                    }
                    // An attribute on a brace-less item (e.g. `#[cfg(test)]
                    // use …;`) ends at the semicolon.
                    ';' if !opened => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Parse `plfs-lint: allow(rule, "why")` suppressions out of comment text.
fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let c = &line.comment;
        let Some(pos) = c.find("plfs-lint:") else {
            continue;
        };
        let rest = &c[pos + "plfs-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let body = &rest[open + "allow(".len()..];
        let rule_end = body.find([',', ')']).unwrap_or(body.len());
        let rule = body[..rule_end].trim().to_string();
        // A justification is the first quoted string after the comma; a
        // multi-line comment justification keeps its opening quote on this
        // line, which is all we require here (lexically non-empty).
        let tail = &body[rule_end..];
        let has_reason = match tail.find('"') {
            Some(q) => {
                let after = &tail[q + 1..];
                // Non-empty up to the closing quote (or end of line for
                // justifications wrapped across comment lines).
                let content = after.split('"').next().unwrap_or("");
                !content.trim().is_empty()
            }
            None => false,
        };
        out.push(Suppression {
            rule,
            has_reason,
            line: i,
        });
    }
    out
}

/// Locate function spans and whether each is an `extern "C"` definition.
/// Lexical: a `fn` keyword, a look-back for `extern "` on the same or the
/// two preceding code lines, then brace matching for the body. Foreign
/// blocks (`extern "C" { fn …; }`) contain declarations without bodies and
/// resolve to zero-length spans, which no rule acts on.
fn find_fn_spans(lines: &[Line]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(fn_col) = find_word(code, "fn") else {
            continue;
        };
        // Look back for `extern "` within the declaration head.
        let mut head = String::new();
        for prev in lines.iter().take(i).skip(i.saturating_sub(2)) {
            head.push_str(&prev.code);
            head.push(' ');
        }
        head.push_str(&code[..fn_col]);
        let is_extern_c = head.contains("extern \"") && !head.trim_end().ends_with('}');
        // The identifier after `fn`, if any. Fn-pointer types (`fn(c_int)`)
        // and closures yield an empty name, which the call graph skips.
        let after_fn = code[fn_col + 2..].trim_start();
        let name: String = after_fn
            .bytes()
            .take_while(|&b| is_ident_byte(b))
            .map(char::from)
            .collect();
        // `#[no_mangle]` sits on its own line above the (possibly
        // attribute-laden) declaration head.
        let no_mangle = lines
            .iter()
            .take(i + 1)
            .skip(i.saturating_sub(3))
            .any(|l| l.code.contains("#[no_mangle]"));
        // Find the body: first '{' at or after the fn, matched to close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = i;
        'body: for (j, l) in lines.iter().enumerate().skip(i) {
            let start_col = if j == i { fn_col } else { 0 };
            for c in l.code[start_col.min(l.code.len())..].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'body;
                        }
                    }
                    // Declaration only (foreign block / trait method).
                    ';' if !opened => {
                        end = i;
                        break 'body;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        spans.push(FnSpan {
            start: i,
            end,
            is_extern_c,
            name,
            no_mangle,
        });
    }
    spans
}

/// Find `word` in `s` at identifier boundaries; returns the byte offset.
pub(crate) fn find_word(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut from = 0;
    while let Some(rel) = s[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Per-file rules plus the engine's own suppression meta-rule.
fn run_file_rules(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    rules::panic_in_ffi(ctx, findings);
    rules::ffi_barrier(ctx, findings);
    rules::errno_discipline(ctx, findings);
    rules::relaxed_ordering_audit(ctx, findings);
    rules::lock_across_io(ctx, findings);
    rules::no_direct_backing_io(ctx, findings);
    // Suppressions without a justification are findings themselves.
    for s in &ctx.suppressions {
        if !s.has_reason && !ctx.line_in_test(s.line) {
            findings.push(ctx.finding(
                "bad-suppression",
                s.line,
                format!(
                    "suppression for `{}` lacks a justification string: \
                     use plfs-lint: allow({}, \"<why>\")",
                    s.rule, s.rule
                ),
            ));
        }
    }
}

/// Lint a set of files together: per-file line rules, then the four
/// call-graph passes (deadlock cycles, signal safety, errno clobber,
/// symbol coverage) over the combined workspace graph. Each `(path, src)`
/// pair is a workspace-relative path and its source text. Per-file work is
/// parallelized with rayon; the graph passes run once over the whole set.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let per_file: Vec<(FileCtx, Vec<Finding>)> = files
        .par_iter()
        .map(|(path, src)| {
            let ctx = FileCtx::new(path, src);
            let mut findings = Vec::new();
            run_file_rules(&ctx, &mut findings);
            (ctx, findings)
        })
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(per_file.len());
    for (ctx, f) in per_file {
        findings.extend(f);
        ctxs.push(ctx);
    }
    let graph = callgraph::Graph::build(&ctxs);
    passes::deadlock::run(&graph, &mut findings);
    passes::signal_safety::run(&graph, &mut findings);
    passes::errno_clobber::run(&graph, &mut findings);
    passes::symbol_matrix::run(&graph, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    findings
}

/// Lint one file's source text. `path` is the workspace-relative path used
/// both for reporting and rule scoping. Call-graph passes still run, with
/// the single file as the whole visible workspace.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_files(&[(path.to_string(), src.to_string())])
}

/// Walk the workspace at `root` and lint every first-party source file:
/// `src/**/*.rs` of the root package and each `crates/*` member. Vendored
/// stand-ins (`vendor/`), integration tests (`tests/`), benches, examples
/// and build output are out of scope — the rules target shipping code.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, std::io::Error> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.sort();
    if files.is_empty() {
        // A mistyped root must not read as a vacuously clean workspace —
        // that would silently disable the CI gate.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no .rs sources under {} — wrong root?", root.display()),
        ));
    }
    let sources: Vec<Result<(String, String), std::io::Error>> = files
        .par_iter()
        .map(|f| {
            let src = std::fs::read_to_string(f)?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            Ok((rel, src))
        })
        .collect();
    let mut pairs = Vec::with_capacity(sources.len());
    for s in sources {
        pairs.push(s?);
    }
    Ok(lint_files(&pairs))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            // `src/bin/` holds test harness binaries (preload-smoke), not
            // shipped library code; skip, like tests/ and benches/.
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Render findings as a human-readable report.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        let _ = writeln!(out, "    {}", f.snippet);
    }
    let _ = writeln!(
        out,
        "plfs-lint: {} finding{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

/// Render findings as a JSON document (via `jsonlite`):
/// `{"findings": [{"file", "line", "rule", "snippet", "message"}…],
///   "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    use jsonlite::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::object()
                .with("file", f.file.as_str())
                .with("line", f.line)
                .with("rule", f.rule)
                .with("snippet", f.snippet.as_str())
                .with("message", f.message.as_str())
        })
        .collect();
    Value::object()
        .with("findings", items)
        .with("count", findings.len())
        .to_json_pretty()
}
