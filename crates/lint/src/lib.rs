//! # plfs-lint — workspace-invariant static analysis
//!
//! LDPLFS delivers "improved I/O without application modification" only if
//! the preloaded shim can never crash the host process, and the PR 1–3
//! concurrency work (relaxed atomics, lock sharding, a lock-free trace
//! ring) only stays correct if its invariants outlive the author. This
//! crate enforces those invariants mechanically, with a comment- and
//! string-aware lexical scanner (see [`lexer`]) and a small rule engine.
//!
//! ## Rules
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `panic-in-ffi` | `crates/preload`, `crates/ldplfs` | no `unwrap`/`expect`/`panic!`-family calls in shim code; no slice indexing inside `extern "C"` bodies |
//! | `ffi-barrier` | `crates/preload` | every `extern "C"` entry point routes through `ffi_guard!` (catch_unwind → errno) |
//! | `errno-discipline` | `crates/preload` | any function returning `-1` must set errno (directly or via `ffi_guard!`) |
//! | `relaxed-ordering-audit` | whole workspace | every `Ordering::Relaxed` carries a `// relaxed: <why>` justification |
//! | `lock-across-io` | `crates/plfs` | no `lock()`/`read()`/`write()` guard held across a backing-store call |
//! | `no-direct-backing-io` | `crates/plfs` (except `backing.rs`) | file I/O goes through the `Backing` trait, never `std::fs` directly |
//!
//! ## Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line
//! immediately above:
//!
//! ```text
//! // plfs-lint: allow(lock-across-io, "seed happens once under the reader
//! // lock on purpose: racing seeders would double-merge")
//! ```
//!
//! The justification string is **required** and must be non-empty — a bare
//! `allow(rule)` is itself a finding. `relaxed-ordering-audit` also accepts
//! the lighter-weight `// relaxed: <why>` annotation, since every atomic
//! site needs one and the full suppression form would drown the code.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt from
//! every rule: tests are allowed to unwrap.

#![warn(missing_docs)]

pub mod lexer;
mod rules;

use lexer::Line;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `panic-in-ffi`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation of the violated invariant.
    pub message: String,
}

/// All rule identifiers, in report order. `bad-suppression` is the
/// engine's own meta-rule: an `allow(...)` without a justification string.
pub const RULES: &[&str] = &[
    "panic-in-ffi",
    "ffi-barrier",
    "errno-discipline",
    "relaxed-ordering-audit",
    "lock-across-io",
    "no-direct-backing-io",
    "bad-suppression",
];

/// One parsed `plfs-lint: allow(rule, "why")` suppression.
#[derive(Debug, Clone)]
struct Suppression {
    rule: String,
    /// Empty justification is a violation in its own right.
    has_reason: bool,
    line: usize,
}

/// A contiguous function span in the scrubbed source.
#[derive(Debug, Clone)]
struct FnSpan {
    /// 0-based line of the `fn` keyword.
    start: usize,
    /// 0-based line of the closing brace (inclusive).
    end: usize,
    is_extern_c: bool,
}

/// Everything the rules need to know about one file.
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    lines: Vec<Line>,
    /// `in_test[i]` — line `i` is inside `#[cfg(test)]` / `#[test]` code.
    in_test: Vec<bool>,
    suppressions: Vec<Suppression>,
    fns: Vec<FnSpan>,
}

impl FileCtx {
    /// Build the context for one file's source text.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let lines = lexer::scrub(src);
        let in_test = mark_test_lines(&lines);
        let suppressions = parse_suppressions(&lines);
        let fns = find_fn_spans(&lines);
        FileCtx {
            path: path.to_string(),
            lines,
            in_test,
            suppressions,
            fns,
        }
    }

    fn line_in_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Is a finding of `rule` on 0-based line `i` suppressed (same line or
    /// the line above), with a non-empty justification?
    fn suppressed(&self, rule: &str, i: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.has_reason && (s.line == i || s.line + 1 == i))
    }

    /// Comment text of line `i` and the line above, joined — used by the
    /// `// relaxed:` annotation check.
    fn nearby_comments(&self, i: usize) -> String {
        let mut out = String::new();
        if i > 0 {
            out.push_str(&self.lines[i - 1].comment);
            out.push(' ');
        }
        out.push_str(&self.lines[i].comment);
        out
    }

    fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        Finding {
            file: self.path.clone(),
            line: i + 1,
            rule,
            snippet: self.lines[i].raw.trim().to_string(),
            message,
        }
    }
}

/// Mark lines belonging to test code: a `#[cfg(test)]`-attributed item
/// (typically `mod tests`) or a `#[test]` / `#[bench]` function, tracked by
/// brace depth from the attribute to the close of the item's block.
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[bench]")
            || code.contains("#[cfg(all(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Scan forward for the item's opening brace, then to its close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        'scan: while j < lines.len() {
            in_test[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            in_test[j] = true;
                            break 'scan;
                        }
                    }
                    // An attribute on a brace-less item (e.g. `#[cfg(test)]
                    // use …;`) ends at the semicolon.
                    ';' if !opened => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Parse `plfs-lint: allow(rule, "why")` suppressions out of comment text.
fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let c = &line.comment;
        let Some(pos) = c.find("plfs-lint:") else {
            continue;
        };
        let rest = &c[pos + "plfs-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let body = &rest[open + "allow(".len()..];
        let rule_end = body.find([',', ')']).unwrap_or(body.len());
        let rule = body[..rule_end].trim().to_string();
        // A justification is the first quoted string after the comma; a
        // multi-line comment justification keeps its opening quote on this
        // line, which is all we require here (lexically non-empty).
        let tail = &body[rule_end..];
        let has_reason = match tail.find('"') {
            Some(q) => {
                let after = &tail[q + 1..];
                // Non-empty up to the closing quote (or end of line for
                // justifications wrapped across comment lines).
                let content = after.split('"').next().unwrap_or("");
                !content.trim().is_empty()
            }
            None => false,
        };
        out.push(Suppression {
            rule,
            has_reason,
            line: i,
        });
    }
    out
}

/// Locate function spans and whether each is an `extern "C"` definition.
/// Lexical: a `fn` keyword, a look-back for `extern "` on the same or the
/// two preceding code lines, then brace matching for the body. Foreign
/// blocks (`extern "C" { fn …; }`) contain declarations without bodies and
/// resolve to zero-length spans, which no rule acts on.
fn find_fn_spans(lines: &[Line]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(fn_col) = find_word(code, "fn") else {
            continue;
        };
        // Look back for `extern "` within the declaration head.
        let mut head = String::new();
        for prev in lines.iter().take(i).skip(i.saturating_sub(2)) {
            head.push_str(&prev.code);
            head.push(' ');
        }
        head.push_str(&code[..fn_col]);
        let is_extern_c = head.contains("extern \"") && !head.trim_end().ends_with('}');
        // Find the body: first '{' at or after the fn, matched to close.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = i;
        'body: for (j, l) in lines.iter().enumerate().skip(i) {
            let start_col = if j == i { fn_col } else { 0 };
            for c in l.code[start_col.min(l.code.len())..].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'body;
                        }
                    }
                    // Declaration only (foreign block / trait method).
                    ';' if !opened => {
                        end = i;
                        break 'body;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        spans.push(FnSpan {
            start: i,
            end,
            is_extern_c,
        });
    }
    spans
}

/// Find `word` in `s` at identifier boundaries; returns the byte offset.
pub(crate) fn find_word(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut from = 0;
    while let Some(rel) = s[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lint one file's source text. `path` is the workspace-relative path used
/// both for reporting and rule scoping.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::new(path, src);
    let mut findings = Vec::new();
    rules::panic_in_ffi(&ctx, &mut findings);
    rules::ffi_barrier(&ctx, &mut findings);
    rules::errno_discipline(&ctx, &mut findings);
    rules::relaxed_ordering_audit(&ctx, &mut findings);
    rules::lock_across_io(&ctx, &mut findings);
    rules::no_direct_backing_io(&ctx, &mut findings);
    // Suppressions without a justification are findings themselves.
    for s in &ctx.suppressions {
        if !s.has_reason && !ctx.line_in_test(s.line) {
            findings.push(ctx.finding(
                "bad-suppression",
                s.line,
                format!(
                    "suppression for `{}` lacks a justification string: \
                     use plfs-lint: allow({}, \"<why>\")",
                    s.rule, s.rule
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Walk the workspace at `root` and lint every first-party source file:
/// `src/**/*.rs` of the root package and each `crates/*` member. Vendored
/// stand-ins (`vendor/`), integration tests (`tests/`), benches, examples
/// and build output are out of scope — the rules target shipping code.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, std::io::Error> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    files.sort();
    if files.is_empty() {
        // A mistyped root must not read as a vacuously clean workspace —
        // that would silently disable the CI gate.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no .rs sources under {} — wrong root?", root.display()),
        ));
    }
    let mut findings = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            // `src/bin/` holds test harness binaries (preload-smoke), not
            // shipped library code; skip, like tests/ and benches/.
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Render findings as a human-readable report.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        let _ = writeln!(out, "    {}", f.snippet);
    }
    let _ = writeln!(
        out,
        "plfs-lint: {} finding{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

/// Render findings as a JSON document (via `jsonlite`):
/// `{"findings": [{"file", "line", "rule", "snippet", "message"}…],
///   "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    use jsonlite::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::object()
                .with("file", f.file.as_str())
                .with("line", f.line)
                .with("rule", f.rule)
                .with("snippet", f.snippet.as_str())
                .with("message", f.message.as_str())
        })
        .collect();
    Value::object()
        .with("findings", items)
        .with("count", findings.len())
        .to_json_pretty()
}
