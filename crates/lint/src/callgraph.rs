//! Workspace-level syntactic call graph with per-line event summaries.
//!
//! The per-file rules in this crate see one line (or one function span) at
//! a time; the PR 9 passes need to reason *across* functions: a lock-order
//! cycle spans several methods, an allocation before dlsym-next resolution
//! hides two calls deep, an errno clobber sits in a helper. This module
//! builds the substrate they share: for every named function in the linted
//! file set, a [`FnNode`] with one [`LineEvent`] per body line recording
//! the lock classes acquired and held, the calls made, backing-store I/O,
//! allocation/formatting sites, `real!`/`dlsym` resolution, `set_errno`
//! and `-1` mentions.
//!
//! Everything here is lexical, like the rest of the crate: no type
//! information, no macro expansion. Name resolution is deliberately
//! conservative — same file first, then same crate, and method calls only
//! resolve when the name is unambiguous within the crate and not on the
//! common-method blocklist. An unresolved call contributes nothing, so the
//! passes under-approximate rather than hallucinate.

use crate::rules::{guard_binding, mentions_minus_one};
use crate::{find_word, is_ident_byte, FileCtx};
use std::collections::{HashMap, HashSet};

/// A call site: callee identifier and whether it carries a receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Callee identifier (last path segment).
    pub name: String,
    /// `true` when the call has an explicit receiver or path qualifier
    /// (`expr.name(…)`, `Type::name(…)`): the receiver names a type we do
    /// not track, so resolution stays within the caller's crate and skips
    /// blocklisted generic names. Plain `name(…)` calls resolve wider.
    pub method: bool,
}

/// Per-line facts inside one function body.
#[derive(Debug, Clone, Default)]
pub struct LineEvent {
    /// 0-based source line.
    pub line: usize,
    /// Brace depth at line start, relative to the function (signature = 0).
    pub depth: i32,
    /// Lock classes of `let`-bound guards live at line start.
    pub held: Vec<String>,
    /// Lock acquisitions on this line: `(class, is_let_binding)`. A
    /// non-binding acquisition is a same-statement temporary whose guard
    /// drops at the semicolon.
    pub acquires: Vec<(String, bool)>,
    /// Calls made on this line.
    pub calls: Vec<Call>,
    /// Mentions the backing store (same signal `lock-across-io` keys on).
    pub io: bool,
    /// First allocation/formatting pattern on the line, if any.
    pub alloc: Option<&'static str>,
    /// Resolves a next-in-chain symbol: `real!(…)` or a direct `dlsym`.
    pub resolves_real: bool,
    /// Calls `set_errno`.
    pub sets_errno: bool,
    /// Mentions a literal `-1` (candidate libc error return).
    pub minus_one: bool,
    /// Calls through a local `let f = real!(…)` binding from this function.
    pub calls_real_local: bool,
    /// Identifier bound by a `let` on this line, if any.
    pub let_name: Option<String>,
}

/// One named function in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the [`Graph::ctxs`] slice of the defining file.
    pub file: usize,
    /// Function name (identifier after `fn`).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start: usize,
    /// 0-based line of the closing brace.
    pub end: usize,
    /// Declared `extern "C"`.
    pub is_extern_c: bool,
    /// Carries `#[no_mangle]` — an interposition entry point.
    pub no_mangle: bool,
    /// Lives inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Per-line facts for the body, in source order.
    pub events: Vec<LineEvent>,
}

/// The workspace call graph over a set of linted files.
pub struct Graph<'a> {
    /// The file contexts the graph was built from, in input order.
    pub ctxs: &'a [FileCtx],
    /// All named non-declaration functions found.
    pub fns: Vec<FnNode>,
    /// Resolved callee indices per function (deduplicated).
    pub edges: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
}

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "ref", "mut", "use", "pub", "impl", "where", "unsafe", "extern", "const", "static", "struct",
    "enum", "trait", "type", "mod", "crate", "super", "self", "break", "continue", "dyn", "box",
    "await", "async", "yield",
];

/// Method names too generic to resolve by name alone — `x.get(…)` in one
/// file has nothing to do with `fn get` in another. Plain calls are not
/// filtered: a free `get(…)` is rare enough to trust.
const COMMON_METHODS: &[&str] = &[
    "new",
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "push",
    "pop",
    "clone",
    "drop",
    "parse",
    "open",
    "close",
    "read",
    "write",
    "size",
    "sync",
    "flush",
    "next",
    "iter",
    "into_iter",
    "collect",
    "contains",
    "contains_key",
    "entry",
    "take",
    "clear",
    "extend",
    "with",
    "sort",
    "join",
    "split",
    "find",
    "map",
    "filter",
    "lock",
    "send",
    "recv",
    "run",
    "start",
    "stop",
    "wait",
    "clone_box",
    "reset",
    "seek",
    "name",
    "path",
    "id",
    "kind",
];

/// Allocation / formatting patterns that are off-limits before dlsym-next
/// resolution (each may take the global allocator lock or re-enter
/// interposable machinery).
const ALLOC_PATTERNS: &[&str] = &[
    "format!",
    "vec!",
    "println!",
    "eprintln!",
    "print!",
    "eprint!",
    "panic!",
    "to_string(",
    "to_owned(",
    "to_vec(",
    "String::from",
    "String::new",
    "String::with_capacity",
    "CString::new",
    "Box::new",
    "Arc::new",
    "Rc::new",
    "Vec::with_capacity",
    "with_capacity(",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Crate name a workspace-relative path belongs to (`crates/<name>/…`),
/// or `"root"` for the root package.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

/// Extract call sites from one scrubbed code line.
fn extract_calls(code: &str) -> Vec<Call> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if !is_ident_start(b[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        // Followed directly by `(` — macro calls (`name!(`) and bare
        // identifiers fall out naturally.
        if i >= b.len() || b[i] != b'(' {
            continue;
        }
        let name = &code[start..i];
        if KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_uppercase() {
            continue;
        }
        let before = code[..start].trim_end();
        if before.ends_with("fn") {
            continue; // definition, not a call
        }
        out.push(Call {
            name: name.to_string(),
            method: before.ends_with('.') || before.ends_with("::"),
        });
    }
    out
}

/// Lock-acquisition sites on a line: byte offset and lock class. The class
/// is the identifier before `.lock()` / `.read()` / `.write()`, scanning
/// back over one balanced `(…)` group so `self.shard(pid).lock()` reads as
/// class `shard`, not `<anon>`.
fn lock_sites(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(pat) {
            let at = from + rel;
            out.push((at, lock_class(code, at)));
            from = at + pat.len();
        }
    }
    out.sort();
    out
}

fn lock_class(code: &str, dot_at: usize) -> String {
    let b = code.as_bytes();
    let mut end = dot_at;
    if end > 0 && b[end - 1] == b')' {
        // Balance back over the call arguments to the matching `(`.
        let mut depth = 0i32;
        let mut k = end - 1;
        loop {
            match b[k] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return "<anon>".to_string();
            }
            k -= 1;
        }
        end = k;
    }
    let mut s = end;
    while s > 0 && is_ident_byte(b[s - 1]) {
        s -= 1;
    }
    let ident = &code[s..end];
    if ident.is_empty() || ident == "self" {
        "<anon>".to_string()
    } else {
        ident.to_string()
    }
}

/// `let [mut] NAME` prefix of a line, if present.
fn let_binding(code: &str) -> Option<String> {
    let at = find_word(code, "let")?;
    let rest = code[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .bytes()
        .take_while(|&b| is_ident_byte(b))
        .map(char::from)
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

impl<'a> Graph<'a> {
    /// Build the graph over a set of file contexts (input order is kept:
    /// `FnNode::file` indexes into `ctxs`).
    pub fn build(ctxs: &'a [FileCtx]) -> Graph<'a> {
        let mut fns = Vec::new();
        for (file, ctx) in ctxs.iter().enumerate() {
            for span in &ctx.fns {
                if span.name.is_empty() {
                    continue; // fn-pointer type, not a definition
                }
                let has_body = ctx.lines[span.start..=span.end.min(ctx.lines.len() - 1)]
                    .iter()
                    .any(|l| l.code.contains('{'));
                if !has_body {
                    continue; // foreign-block / trait declaration
                }
                fns.push(build_fn(file, ctx, span));
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut g = Graph {
            ctxs,
            fns,
            edges: Vec::new(),
            by_name,
        };
        g.edges = (0..g.fns.len())
            .map(|i| {
                let mut out: Vec<usize> = g.fns[i]
                    .events
                    .iter()
                    .flat_map(|e| e.calls.iter())
                    .filter_map(|c| g.resolve(i, c))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        g
    }

    /// Resolve a call from `caller` to a graph node, conservatively:
    /// unique match in the same file, else unique match in the same crate,
    /// else (plain calls only) unique match workspace-wide. Method calls
    /// with blocklisted generic names never resolve.
    pub fn resolve(&self, caller: usize, call: &Call) -> Option<usize> {
        if call.method && COMMON_METHODS.contains(&call.name.as_str()) {
            return None;
        }
        let live: Vec<usize> = self
            .by_name
            .get(&call.name)?
            .iter()
            .copied()
            .filter(|&i| !self.fns[i].in_test)
            .collect();
        let cfile = self.fns[caller].file;
        let same_file: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| self.fns[i].file == cfile)
            .collect();
        match same_file.len() {
            1 => return Some(same_file[0]),
            0 => {}
            _ => return None, // ambiguous even within the file
        }
        let ccrate = crate_of(&self.ctxs[cfile].path);
        let same_crate: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| crate_of(&self.ctxs[self.fns[i].file].path) == ccrate)
            .collect();
        match same_crate.len() {
            1 => return Some(same_crate[0]),
            0 if !call.method && live.len() == 1 => return Some(live[0]),
            _ => {}
        }
        None
    }

    /// Fixpoint: lock classes each function may acquire, directly or via
    /// any resolved callee.
    pub fn transitive_acquires(&self) -> Vec<HashSet<String>> {
        let mut acc: Vec<HashSet<String>> = self
            .fns
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .flat_map(|e| e.acquires.iter().map(|(c, _)| c.clone()))
                    .collect()
            })
            .collect();
        self.fixpoint(
            |g, i, acc: &Vec<HashSet<String>>| {
                let mut merged = acc[i].clone();
                for &callee in &g.edges[i] {
                    merged.extend(acc[callee].iter().cloned());
                }
                merged
            },
            &mut acc,
        );
        acc
    }

    /// Fixpoint: functions that touch the backing store, directly or via
    /// any resolved callee.
    pub fn transitive_io(&self) -> Vec<bool> {
        let mut acc: Vec<bool> = self
            .fns
            .iter()
            .map(|f| f.events.iter().any(|e| e.io))
            .collect();
        self.fixpoint(
            |g, i, acc: &Vec<bool>| acc[i] || g.edges[i].iter().any(|&c| acc[c]),
            &mut acc,
        );
        acc
    }

    /// Fixpoint: functions that may clobber errno — they resolve or call a
    /// next-in-chain libc symbol, call `set_errno` themselves, or do
    /// backing I/O, directly or via any resolved callee.
    pub fn transitive_errno_clobber(&self) -> Vec<bool> {
        let mut acc: Vec<bool> = self
            .fns
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .any(|e| e.resolves_real || e.sets_errno || e.calls_real_local || e.io)
            })
            .collect();
        self.fixpoint(
            |g, i, acc: &Vec<bool>| acc[i] || g.edges[i].iter().any(|&c| acc[c]),
            &mut acc,
        );
        acc
    }

    /// Iterate `step` over every node until no node's value changes.
    /// Values must only grow (set union / bool or), so this terminates.
    fn fixpoint<T: PartialEq + Clone>(
        &self,
        step: impl Fn(&Graph<'a>, usize, &Vec<T>) -> T,
        acc: &mut Vec<T>,
    ) {
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let next = step(self, i, acc);
                if next != acc[i] {
                    acc[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Build one function node: walk the span tracking brace depth and live
/// guard bindings, recording a [`LineEvent`] per line.
fn build_fn(file: usize, ctx: &FileCtx, span: &crate::FnSpan) -> FnNode {
    let mut events = Vec::new();
    // (guard name, lock class, depth at binding)
    let mut guards: Vec<(String, String, i32)> = Vec::new();
    let mut depth = 0i32;
    let end = span.end.min(ctx.lines.len() - 1);
    for i in span.start..=end {
        let code = &ctx.lines[i].code;
        let held: Vec<String> = guards.iter().map(|(_, c, _)| c.clone()).collect();
        let sites = lock_sites(code);
        let binding = guard_binding(code);
        let mut acquires: Vec<(String, bool)> =
            sites.iter().map(|(_, c)| (c.clone(), false)).collect();
        if binding.is_some() {
            if let Some(last) = acquires.last_mut() {
                last.1 = true;
            }
        }
        let calls = extract_calls(code);
        events.push(LineEvent {
            line: i,
            depth,
            held,
            acquires: acquires.clone(),
            calls,
            io: find_word(code, "backing").is_some(),
            alloc: ALLOC_PATTERNS.iter().find(|p| code.contains(*p)).copied(),
            resolves_real: code.contains("real!") || find_word(code, "dlsym").is_some(),
            sets_errno: find_word(code, "set_errno").is_some(),
            minus_one: mentions_minus_one(code),
            calls_real_local: false, // filled in below
            let_name: let_binding(code),
        });
        // Guard lifetime bookkeeping after the line's own effects.
        if let (Some(name), Some((_, class))) = (binding, sites.last()) {
            guards.push((name, class.clone(), depth));
        }
        for (gname, _, _) in guards.clone() {
            if code.contains(&format!("drop({gname})")) {
                guards.retain(|(n, _, _)| *n != gname);
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|(_, _, d)| depth > *d || (depth == *d && *d > 0));
    }
    // Calls through `let f = real!(…)` locals.
    let real_locals: HashSet<String> = events
        .iter()
        .filter(|e| e.resolves_real)
        .filter_map(|e| e.let_name.clone())
        .collect();
    if !real_locals.is_empty() {
        for e in &mut events {
            e.calls_real_local = e
                .calls
                .iter()
                .any(|c| !c.method && real_locals.contains(&c.name));
        }
    }
    FnNode {
        file,
        name: span.name.clone(),
        start: span.start,
        end: span.end,
        is_extern_c: span.is_extern_c,
        no_mangle: span.no_mangle,
        in_test: ctx.line_in_test(span.start),
        events,
    }
}
