//! **signal-safety** — allocation/re-entrancy discipline before dlsym-next
//! resolution in `crates/preload`.
//!
//! The classic LD_PRELOAD failure: an interposed wrapper runs *before* it
//! has resolved the next-in-chain symbol, and on that path it allocates
//! (the allocator may itself be interposed, or may take a lock the
//! interrupted thread already holds), formats, takes a guard, or calls
//! back into another interposed symbol — recursing into the shim and
//! deadlocking the host application. PR 4's rules could only see the
//! wrapper body itself; this pass walks the call graph from every
//! `#[no_mangle] extern "C"` entry point and checks the whole region that
//! executes before the first `real!` / `dlsym` resolution, across calls.
//!
//! Escape hatch, mirroring `// relaxed:`: a `// signal-safe: <why>`
//! comment on (or just above) a function's `fn` line vouches for the
//! function and everything it calls; the walk does not descend further.
//! Single-statement temporary guards (`sh.table.read().get(…)`) are
//! allowed — they drop at the semicolon and protect shim-private state
//! that no signal handler can hold.

use crate::callgraph::Graph;
use crate::Finding;
use std::collections::HashSet;

pub(crate) fn run(graph: &Graph, out: &mut Vec<Finding>) {
    const RULE: &str = "signal-safety";
    // Interposed entry points of the preload crate: the roots, and also
    // the symbols that must not be re-entered from a hazard region.
    let interposed: HashSet<&str> = graph
        .fns
        .iter()
        .filter(|f| {
            f.no_mangle
                && f.is_extern_c
                && !f.in_test
                && crate::rules::in_preload(&graph.ctxs[f.file].path)
        })
        .map(|f| f.name.as_str())
        .collect();
    if interposed.is_empty() {
        return;
    }

    let mut worklist: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            let f = &graph.fns[i];
            f.no_mangle
                && f.is_extern_c
                && !f.in_test
                && crate::rules::in_preload(&graph.ctxs[f.file].path)
        })
        .collect();
    let mut visited: HashSet<usize> = worklist.iter().copied().collect();

    while let Some(fi) = worklist.pop() {
        let f = &graph.fns[fi];
        let ctx = &graph.ctxs[f.file];
        if annotated_signal_safe(graph, fi) {
            continue; // vouched for, do not descend
        }
        // The hazard region: every line before the first event that
        // resolves the next-in-chain symbol. A function that never
        // resolves is hazardous throughout.
        let boundary = f
            .events
            .iter()
            .position(|e| e.resolves_real)
            .unwrap_or(f.events.len());
        for e in &f.events[..boundary] {
            if ctx.line_in_test(e.line) || ctx.suppressed(RULE, e.line) {
                continue;
            }
            if let Some(pat) = e.alloc {
                out.push(ctx.finding(
                    RULE,
                    e.line,
                    format!(
                        "`{pat}` allocates/formats on a path reachable from an \
                         interposed entry point before dlsym-next resolution; \
                         hoist the resolution or annotate the function with \
                         `// signal-safe: <why>`"
                    ),
                ));
            }
            if e.acquires.iter().any(|(_, binding)| *binding) {
                out.push(
                    ctx.finding(
                        RULE,
                        e.line,
                        "lock guard bound before dlsym-next resolution on an \
                     interposition path; a handler interrupting the holder \
                     re-enters and deadlocks — resolve first"
                            .to_string(),
                    ),
                );
            }
            for c in &e.calls {
                if !c.method && interposed.contains(c.name.as_str()) {
                    out.push(ctx.finding(
                        RULE,
                        e.line,
                        format!(
                            "calls interposed symbol `{}` before dlsym-next \
                             resolution — this recurses into the shim",
                            c.name
                        ),
                    ));
                }
                if let Some(g) = graph.resolve(fi, c) {
                    if visited.insert(g) {
                        worklist.push(g);
                    }
                }
            }
        }
    }
}

/// `// signal-safe: <why>` on the `fn` line or within the three lines
/// above it (above any `#[no_mangle]` / attribute stack).
fn annotated_signal_safe(graph: &Graph, fi: usize) -> bool {
    let f = &graph.fns[fi];
    let ctx = &graph.ctxs[f.file];
    ctx.lines[f.start.saturating_sub(3)..=f.start]
        .iter()
        .any(|l| {
            l.comment
                .find("signal-safe:")
                .is_some_and(|at| !l.comment[at + "signal-safe:".len()..].trim().is_empty())
        })
}
