//! **deadlock-cycle** + transitive **lock-across-io**.
//!
//! From the per-line events we build, per crate, a lock-order digraph:
//! an edge `a → b` means some function acquires a lock of class `b`
//! (directly, or anywhere inside a resolved callee) while holding a guard
//! of class `a`. A cycle in that digraph is a lock-order inversion — two
//! threads entering the cycle from different edges can deadlock. Classes
//! are syntactic (the identifier in front of `.lock()` / `.read()` /
//! `.write()`), so distinct fields that happen to share a name collapse
//! into one class: that over-approximates edges but never invents a held
//! guard. Self-edges (`shard → shard`) are excluded by design: the sharded
//! structures in `crates/plfs` acquire siblings in fixed index order,
//! which cannot invert.
//!
//! The same walk extends PR 4's `lock-across-io` transitively: a call made
//! under a live guard into a callee that (transitively) touches the
//! backing store is the same bug the per-line rule catches, one hop
//! removed.

use crate::callgraph::{crate_of, Graph};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Provenance of one lock-order edge: file index + 0-based line.
type Site = (usize, usize);

pub(crate) fn run(graph: &Graph, out: &mut Vec<Finding>) {
    let trans_acquires = graph.transitive_acquires();
    let trans_io = graph.transitive_io();

    // crate name → (edge (a, b) → first provenance site)
    let mut edges: BTreeMap<&str, BTreeMap<(String, String), Site>> = BTreeMap::new();

    for (fi, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let ctx = &graph.ctxs[f.file];
        let krate = crate_of(&ctx.path);
        for e in &f.events {
            if ctx.line_in_test(e.line) {
                continue;
            }
            let held: BTreeSet<&String> = e.held.iter().filter(|c| *c != "<anon>").collect();
            if held.is_empty() {
                continue;
            }
            // Directly acquired classes, plus anything a resolved callee
            // may acquire.
            let mut acquired: BTreeSet<String> = e
                .acquires
                .iter()
                .map(|(c, _)| c.clone())
                .filter(|c| c != "<anon>")
                .collect();
            let mut io_callee: Option<String> = None;
            for call in &e.calls {
                if let Some(g) = graph.resolve(fi, call) {
                    acquired.extend(trans_acquires[g].iter().filter(|c| *c != "<anon>").cloned());
                    if trans_io[g] && io_callee.is_none() {
                        io_callee = Some(graph.fns[g].name.clone());
                    }
                }
            }
            for h in &held {
                for a in &acquired {
                    if *h != a && !e.held.contains(a) {
                        edges
                            .entry(krate)
                            .or_default()
                            .entry(((*h).clone(), a.clone()))
                            .or_insert((f.file, e.line));
                    }
                }
            }
            // Transitive IO-under-lock: the per-line rule already fires
            // when the backing mention is on this very line.
            if !e.io && crate::rules::in_plfs(&ctx.path) {
                if let Some(callee) = io_callee {
                    if !ctx.suppressed("lock-across-io", e.line) {
                        let held_list: Vec<&str> = held.iter().map(|s| s.as_str()).collect();
                        out.push(ctx.finding(
                            "lock-across-io",
                            e.line,
                            format!(
                                "guard `{}` held across call to `{}`, which reaches \
                                 backing-store I/O transitively; drop the guard first \
                                 or justify with allow(lock-across-io, \"…\")",
                                held_list.join("`, `"),
                                callee
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection per crate, self-edges excluded.
    for (_krate, emap) in edges {
        let nodes: BTreeSet<&String> = emap.keys().flat_map(|(a, b)| [a, b]).collect();
        let idx: BTreeMap<&String, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let names: Vec<&String> = nodes.iter().copied().collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (a, b) in emap.keys() {
            if a != b {
                adj[idx[a]].push(idx[b]);
            }
        }
        for scc in sccs(&adj) {
            if scc.len() < 2 {
                continue;
            }
            let classes: Vec<&str> = scc.iter().map(|&i| names[i].as_str()).collect();
            // Provenance: the lexicographically first edge inside the SCC.
            let in_scc: BTreeSet<&str> = classes.iter().copied().collect();
            let Some(((a, b), &(file, line))) = emap
                .iter()
                .find(|((a, b), _)| in_scc.contains(a.as_str()) && in_scc.contains(b.as_str()))
            else {
                continue;
            };
            let ctx = &graph.ctxs[file];
            if ctx.suppressed("deadlock-cycle", line) {
                continue;
            }
            out.push(ctx.finding(
                "deadlock-cycle",
                line,
                format!(
                    "lock-order inversion: classes {{{}}} form a cycle (edge `{a}` → `{b}` \
                     anchored here); impose a single acquisition order or justify with \
                     allow(deadlock-cycle, \"…\")",
                    classes.join(", ")
                ),
            ));
        }
    }
}

/// Tarjan strongly-connected components (iterative-friendly sizes here, so
/// plain recursion is fine: the node set is lock classes, a handful).
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'s> {
        adj: &'s [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(s: &mut State, v: usize) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        for &w in &s.adj[v].to_vec() {
            match s.index[w] {
                None => {
                    strongconnect(s, w);
                    s.low[v] = s.low[v].min(s.low[w]);
                }
                Some(wi) if s.on_stack[w] => s.low[v] = s.low[v].min(wi),
                _ => {}
            }
        }
        if s.low[v] == s.index[v].unwrap() {
            let mut comp = Vec::new();
            while let Some(w) = s.stack.pop() {
                s.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            s.out.push(comp);
        }
    }
    let n = adj.len();
    let mut s = State {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if s.index[v].is_none() {
            strongconnect(&mut s, v);
        }
    }
    s.out.sort();
    s.out
}
