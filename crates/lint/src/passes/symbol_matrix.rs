//! **symbol-coverage** — the preload alias-family matrix.
//!
//! glibc resolves `open64`, `openat`, `pread64`, `preadv64v2`, … as
//! *separate* dynamic symbols: interposing `open` alone means any
//! LFS-built application (`-D_FILE_OFFSET_BITS=64`) silently bypasses the
//! shim through the `64` twin — no error, just wrong data placement. This
//! pass keeps a declarative matrix of alias families and cross-checks it
//! against the `#[no_mangle] extern "C"` functions actually defined in
//! `crates/preload`:
//!
//! * a defined symbol that is not in the matrix at all is a finding
//!   (extend [`FAMILIES`] when interposing something new);
//! * a family with at least one member defined must have *every* member
//!   defined;
//! * strict twins (same signature, same semantics — `open`/`open64`) must
//!   dispatch to the same `do_*` helper, so the aliases cannot drift.
//!
//! Families the shim deliberately does not cover are listed as
//! single-member entries with the rationale in the table comment (`fork`
//! works through copy-on-write plus per-call `getpid`; `exec*` drops the
//! preload by design when the environment is scrubbed).

use crate::callgraph::Graph;
use crate::Finding;
use std::collections::BTreeMap;

/// Alias families: if any member is interposed, all must be. Extend this
/// table (and, for `64`-twins, [`TWINS`]) when interposing a new symbol.
const FAMILIES: &[&[&str]] = &[
    &["open", "open64", "openat", "openat64"],
    &["creat"],
    &["read"],
    &["write"],
    &["pread", "pread64"],
    &["pwrite", "pwrite64"],
    &["readv"],
    &["writev"],
    &["preadv", "preadv64"],
    &["pwritev", "pwritev64"],
    &["preadv2", "preadv64v2"],
    &["pwritev2", "pwritev64v2"],
    &["lseek", "lseek64"],
    &["close"],
    &["fsync", "fdatasync"],
    &["dup", "dup2", "dup3"],
    &["stat", "stat64"],
    &["lstat", "lstat64"],
    &["fstat", "fstat64"],
    &["fstatat", "newfstatat"],
    &["statx"],
    &["unlink", "unlinkat"],
    &["access"],
    &["mkdir"],
    &["rmdir"],
    &["truncate", "truncate64"],
    &["ftruncate", "ftruncate64"],
    &["fopen", "fopen64"],
    // Deliberately single-member: fork needs no hook (the fd table is
    // process-local behind `getpid`, inherited state is COW-correct) and
    // exec* inheriting the shim is environment policy, not interposition.
    &["fork"],
    &["vfork"],
    &["execve"],
];

/// Strict alias twins: identical contract, so they must route through the
/// same `do_*` dispatcher.
const TWINS: &[&[&str]] = &[
    &["open", "open64"],
    &["openat", "openat64"],
    &["pread", "pread64"],
    &["pwrite", "pwrite64"],
    &["preadv", "preadv64"],
    &["pwritev", "pwritev64"],
    &["preadv2", "preadv64v2"],
    &["pwritev2", "pwritev64v2"],
    &["lseek", "lseek64"],
    &["stat", "stat64"],
    &["lstat", "lstat64"],
    &["fstat", "fstat64"],
    &["fstatat", "newfstatat"],
    &["truncate", "truncate64"],
    &["ftruncate", "ftruncate64"],
    &["fopen", "fopen64"],
    &["fsync", "fdatasync"],
];

pub(crate) fn run(graph: &Graph, out: &mut Vec<Finding>) {
    const RULE: &str = "symbol-coverage";
    // name → fn index of the interposed entry points actually defined.
    let defined: BTreeMap<&str, usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.no_mangle
                && f.is_extern_c
                && !f.in_test
                && crate::rules::in_preload(&graph.ctxs[f.file].path)
        })
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    if defined.is_empty() {
        return;
    }
    let in_matrix = |name: &str| FAMILIES.iter().any(|fam| fam.contains(&name));

    // (a) Every defined entry point must appear in the matrix.
    for (name, &fi) in &defined {
        if !in_matrix(name) {
            let f = &graph.fns[fi];
            let ctx = &graph.ctxs[f.file];
            if !ctx.suppressed(RULE, f.start) {
                out.push(ctx.finding(
                    RULE,
                    f.start,
                    format!(
                        "interposed symbol `{name}` is not in the symbol-coverage \
                         matrix; add its alias family to FAMILIES in \
                         crates/lint/src/passes/symbol_matrix.rs"
                    ),
                ));
            }
        }
    }

    // (b) A partially-defined family is a silent-bypass hole.
    for fam in FAMILIES {
        let present: Vec<&str> = fam
            .iter()
            .copied()
            .filter(|m| defined.contains_key(m))
            .collect();
        if present.is_empty() || present.len() == fam.len() {
            continue;
        }
        let missing: Vec<&str> = fam
            .iter()
            .copied()
            .filter(|m| !defined.contains_key(m))
            .collect();
        let anchor = &graph.fns[defined[present[0]]];
        let ctx = &graph.ctxs[anchor.file];
        if !ctx.suppressed(RULE, anchor.start) {
            out.push(ctx.finding(
                RULE,
                anchor.start,
                format!(
                    "alias family {{{}}} is incompletely interposed: missing `{}` — \
                     calls through the missing alias silently bypass the shim",
                    fam.join(", "),
                    missing.join("`, `")
                ),
            ));
        }
    }

    // (c) Strict twins must share a `do_*` dispatcher.
    for twins in TWINS {
        let dispatchers: Vec<(&str, usize, Option<String>)> = twins
            .iter()
            .copied()
            .filter_map(|m| defined.get(m).map(|&fi| (m, fi, dispatcher(graph, fi))))
            .collect();
        if dispatchers.len() < 2 {
            continue;
        }
        let first = &dispatchers[0];
        for other in &dispatchers[1..] {
            if other.2 != first.2 {
                let f = &graph.fns[other.1];
                let ctx = &graph.ctxs[f.file];
                if !ctx.suppressed(RULE, f.start) {
                    out.push(ctx.finding(
                        RULE,
                        f.start,
                        format!(
                            "alias `{}` dispatches to {} but its twin `{}` \
                             dispatches to {} — strict aliases must share one \
                             do_* helper so they cannot drift",
                            other.0,
                            fmt_dispatch(&other.2),
                            first.0,
                            fmt_dispatch(&first.2),
                        ),
                    ));
                }
            }
        }
    }
}

/// The first `do_*` call in a wrapper body — its dispatcher.
fn dispatcher(graph: &Graph, fi: usize) -> Option<String> {
    graph.fns[fi]
        .events
        .iter()
        .flat_map(|e| e.calls.iter())
        .find(|c| !c.method && c.name.starts_with("do_"))
        .map(|c| c.name.clone())
}

fn fmt_dispatch(d: &Option<String>) -> String {
    match d {
        Some(name) => format!("`{name}`"),
        None => "no do_* helper".to_string(),
    }
}
