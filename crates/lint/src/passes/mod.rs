//! Call-graph passes over [`crate::callgraph::Graph`].
//!
//! Each pass takes the built graph plus the shared findings sink and emits
//! through the same suppression machinery as the per-file rules. Pass
//! scoping mirrors the rule table: deadlock + transitive IO-under-lock in
//! `crates/plfs` (anywhere locks are classed, really), signal safety /
//! errno clobber / symbol coverage in `crates/preload`.

pub(crate) mod deadlock;
pub(crate) mod errno_clobber;
pub(crate) mod signal_safety;
pub(crate) mod symbol_matrix;
