//! **errno-clobber** — dataflow between errno and the libc return value.
//!
//! Two contracts in `crates/preload`:
//!
//! 1. After `set_errno(E)`, the function must reach its `-1` return with
//!    errno intact. Any intervening call that can clobber errno — another
//!    `real!` resolution, a call through a `real!`-bound local, a callee
//!    that transitively does either — silently replaces the error the
//!    caller will read.
//! 2. When a wrapper captures a next-in-chain return (`let new =
//!    real_dup(fd);`) and later returns it, the bookkeeping in between
//!    must not clobber errno either, or the host sees the right `-1` with
//!    the wrong errno. Only same-depth statements are checked: bookkeeping
//!    nested under `if new >= 0 { … }` runs on the success path, where
//!    errno is dead.

use crate::callgraph::{Graph, LineEvent};
use crate::Finding;

pub(crate) fn run(graph: &Graph, out: &mut Vec<Finding>) {
    const RULE: &str = "errno-clobber";
    let clobbers = graph.transitive_errno_clobber();

    for (fi, f) in graph.fns.iter().enumerate() {
        let ctx = &graph.ctxs[f.file];
        if f.in_test || !crate::rules::in_preload(&ctx.path) {
            continue;
        }
        let clobber_call = |e: &LineEvent| -> Option<String> {
            if e.resolves_real {
                return Some("real!".to_string());
            }
            if e.calls_real_local {
                return Some("a real!-bound call".to_string());
            }
            e.calls
                .iter()
                .find(|c| graph.resolve(fi, c).is_some_and(|g| clobbers[g]))
                .map(|c| format!("`{}`", c.name))
        };

        // Contract 1: set_errno → … → -1.
        for (ei, e) in f.events.iter().enumerate() {
            if !e.sets_errno || e.minus_one || ctx.line_in_test(e.line) {
                continue;
            }
            let d = e.depth;
            for ev in &f.events[ei + 1..] {
                if ev.depth < d {
                    break; // left the error-handling block
                }
                if ev.sets_errno {
                    break; // a fresh set_errno starts its own region
                }
                if let Some(what) = clobber_call(ev) {
                    if !ctx.suppressed(RULE, ev.line) {
                        out.push(ctx.finding(
                            RULE,
                            ev.line,
                            format!(
                                "{what} may clobber errno between set_errno \
                                 (line {}) and the -1 return",
                                e.line + 1
                            ),
                        ));
                    }
                    break;
                }
                if ev.minus_one {
                    break; // reached the return with errno intact
                }
            }
        }

        // Contract 2: let ret = real_x(…); … ; ret
        for (ei, e) in f.events.iter().enumerate() {
            let Some(name) = e.let_name.as_deref() else {
                continue;
            };
            if !e.calls_real_local || ctx.line_in_test(e.line) {
                continue;
            }
            let d = e.depth;
            for ev in &f.events[ei + 1..] {
                if ev.depth < d {
                    break;
                }
                let t = ctx.lines[ev.line].code.trim();
                let returned = t == name
                    || t == format!("return {name};")
                    || t == format!("{name} as c_int")
                    || t.strip_prefix("return ").map(str::trim_end) == Some(&format!("{name};"));
                if returned {
                    break; // value reached the caller unclobbered
                }
                if ev.depth == d {
                    if let Some(what) = clobber_call(ev) {
                        if !ctx.suppressed(RULE, ev.line) {
                            out.push(ctx.finding(
                                RULE,
                                ev.line,
                                format!(
                                    "{what} may clobber errno between capturing \
                                     `{name}` from the next-in-chain call (line {}) \
                                     and returning it",
                                    e.line + 1
                                ),
                            ));
                        }
                        break;
                    }
                }
            }
        }
    }
}
