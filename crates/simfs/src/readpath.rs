//! First-byte latency model for PLFS container opens.
//!
//! Before a reader can serve one byte, every per-process index dropping
//! must be opened, read and merged into the global index — the metadata
//! round-trips scale with writer count, which is exactly the cost the
//! paper's Lustre collapse traces to. This module projects what the
//! parallel read-open (concurrent dropping fetch + linear bulk merge)
//! buys at paper scale on a [`Platform`], complementing the *measured*
//! numbers from `micro_plfs`/`paperbench readpath`.

use crate::config::{MdsConfig, Platform};

/// Per-entry CPU cost of the serial merge (timestamp sort plus one
/// interval-map insert with overlap/coalesce checks per entry), calibrated
/// against `micro_plfs`'s `open_path` group.
pub const SERIAL_MERGE_PER_ENTRY: f64 = 450e-9;

/// Per-entry CPU cost of the bulk path (k-way run merge plus one linear
/// coalescing pass over offset-sorted entries), same calibration.
pub const BULK_MERGE_PER_ENTRY: f64 = 80e-9;

/// Projected open latencies for one container on one platform.
#[derive(Debug, Clone)]
pub struct OpenEstimate {
    /// Index droppings in the container (= writer processes).
    pub droppings: usize,
    /// Serial open: sequential dropping fetches, insert-based merge.
    pub serial_secs: f64,
    /// Parallel open: `threads`-wide dropping fetches, bulk merge.
    pub parallel_secs: f64,
}

impl OpenEstimate {
    /// Serial-over-parallel speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }
}

/// One metadata round-trip (open + getattr of an index dropping) plus one
/// small read to fetch its records.
fn per_dropping_fetch(p: &Platform) -> f64 {
    let meta = match p.fs.mds {
        MdsConfig::Dedicated { base_op, .. } => base_op,
        MdsConfig::Distributed { base_op, .. } => base_op,
    };
    meta + p.fs.per_op_latency + p.cluster.syscall_overhead
}

/// Estimate serial vs parallel open time for a container of `droppings`
/// index droppings carrying `entries_per_dropping` records each, with the
/// parallel path running `threads` concurrent fetches.
pub fn open_time(
    p: &Platform,
    droppings: usize,
    entries_per_dropping: usize,
    threads: usize,
) -> OpenEstimate {
    let fetch = per_dropping_fetch(p);
    let entries = (droppings * entries_per_dropping) as f64;
    let threads = threads.max(1).min(droppings.max(1));
    let serial_secs = droppings as f64 * fetch + entries * SERIAL_MERGE_PER_ENTRY;
    // Fetches overlap `threads` at a time; the merge itself is the linear
    // bulk pass (single-threaded, but a different algorithm).
    let rounds = droppings.div_ceil(threads) as f64;
    let parallel_secs = rounds * fetch + entries * BULK_MERGE_PER_ENTRY;
    OpenEstimate {
        droppings,
        serial_secs,
        parallel_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn parallel_open_wins_and_scales_with_droppings() {
        let p = presets::sierra();
        let small = open_time(&p, 16, 256, 8);
        let big = open_time(&p, 256, 256, 8);
        assert!(small.speedup() > 1.0);
        assert!(big.speedup() > 1.0);
        // Absolute time saved grows with the dropping count.
        assert!(big.serial_secs - big.parallel_secs > small.serial_secs - small.parallel_secs);
        assert!(big.serial_secs > small.serial_secs);
    }

    #[test]
    fn one_thread_still_beats_serial_only_on_merge() {
        // threads=1: fetches are serial either way, only the bulk merge
        // differs — the gap must come purely from the per-entry constants.
        let p = presets::minerva();
        let e = open_time(&p, 64, 512, 1);
        let fetch_cost = 64.0 * per_dropping_fetch(&p);
        let merge_gap = 64.0 * 512.0 * (SERIAL_MERGE_PER_ENTRY - BULK_MERGE_PER_ENTRY);
        assert!((e.serial_secs - e.parallel_secs - merge_gap).abs() < 1e-9);
        assert!(e.serial_secs > fetch_cost);
    }

    #[test]
    fn threads_clamped_to_droppings() {
        let p = presets::toy();
        let a = open_time(&p, 4, 100, 64);
        let b = open_time(&p, 4, 100, 4);
        assert!((a.parallel_secs - b.parallel_secs).abs() < 1e-12);
    }
}
