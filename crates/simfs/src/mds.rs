//! The metadata service model.
//!
//! Two shapes, matching the paper's two testbeds:
//!
//! * **Dedicated** (Lustre / Sierra): a single service queue. Service time
//!   inflates with the backlog present at arrival — the documented
//!   degradation of Lustre metadata throughput under concurrent create
//!   storms (directory lock thrash on the MDS). This is the mechanism
//!   behind Figure 5's collapse: PLFS issues O(processes) dropping creates
//!   per open, and past a scale threshold the quadratic queue swamps the
//!   data path.
//! * **Distributed** (GPFS / Minerva): metadata ops hash across the storage
//!   servers with constant service time; no collapse (the paper's §IV
//!   remark that distributed metadata should not show the Fig 5 effect).

use crate::config::MdsConfig;
use crate::queue::SingleQueue;

/// Kinds of metadata operations (costs may differ by kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// Create a file or directory entry.
    Create,
    /// Open / lookup an existing entry.
    Open,
    /// Attribute read.
    Stat,
    /// Remove an entry.
    Remove,
    /// Directory listing (charged per call).
    Readdir,
}

impl MetaOp {
    /// Relative weight of this op against the configured base cost
    /// (creates are the expensive ones: allocation + journal).
    fn weight(self) -> f64 {
        match self {
            MetaOp::Create => 1.0,
            MetaOp::Open => 0.4,
            MetaOp::Stat => 0.3,
            MetaOp::Remove => 0.8,
            MetaOp::Readdir => 0.6,
        }
    }
}

/// Runtime state of the metadata service.
pub struct MetadataService {
    kind: Kind,
    ops: u64,
}

enum Kind {
    Dedicated {
        queue: SingleQueue,
        base_op: f64,
        alpha: f64,
        cap: f64,
        /// Completion times of outstanding requests; the queue depth an
        /// arrival observes is the number of these still in the future.
        outstanding: std::collections::VecDeque<f64>,
    },
    Distributed {
        queues: Vec<SingleQueue>,
        base_op: f64,
    },
}

impl MetadataService {
    /// Build from configuration.
    pub fn new(cfg: &MdsConfig) -> MetadataService {
        let kind = match *cfg {
            MdsConfig::Dedicated {
                base_op,
                contention_alpha,
                contention_cap,
            } => Kind::Dedicated {
                queue: SingleQueue::new(),
                base_op,
                alpha: contention_alpha,
                cap: contention_cap,
                outstanding: std::collections::VecDeque::new(),
            },
            MdsConfig::Distributed { base_op, servers } => Kind::Distributed {
                queues: (0..servers.max(1)).map(|_| SingleQueue::new()).collect(),
                base_op,
            },
        };
        MetadataService { kind, ops: 0 }
    }

    /// Serve one metadata op arriving at `arrival` against the directory
    /// identified by `dir_hash` (used to spread distributed metadata).
    /// Returns the completion time.
    pub fn op(&mut self, arrival: f64, op: MetaOp, dir_hash: u64) -> f64 {
        self.ops += 1;
        match &mut self.kind {
            Kind::Dedicated {
                queue,
                base_op,
                alpha,
                cap,
                outstanding,
            } => {
                // Depth = concurrently outstanding requests at this
                // arrival. (Deliberately not backlog-seconds/base: that
                // feeds the inflation back into itself and explodes
                // exponentially; concurrency is what thrashes directory
                // locks.)
                while outstanding.front().is_some_and(|&c| c <= arrival) {
                    outstanding.pop_front();
                }
                let base = *base_op * op.weight();
                // Only directory-modifying ops thrash the MDS's directory
                // locks; lookups and stats scale under concurrency. The
                // degradation is superlinear in the backlog (depth^1.5):
                // lock queues, journal pressure and allocator contention
                // compound — calibrated so a ~400-client create storm is
                // absorbed while a ~6,000-client one collapses (Fig 5).
                let service = if matches!(op, MetaOp::Create | MetaOp::Remove) {
                    let depth = (outstanding.len() as f64).min(*cap);
                    base * (1.0 + *alpha * depth.powf(1.5))
                } else {
                    base
                };
                let done = queue.serve(arrival, service);
                if matches!(op, MetaOp::Create | MetaOp::Remove) {
                    outstanding.push_back(done);
                }
                done
            }
            Kind::Distributed { queues, base_op } => {
                let idx = (dir_hash % queues.len() as u64) as usize;
                queues[idx].serve(arrival, *base_op * op.weight())
            }
        }
    }

    /// Total metadata ops served.
    pub fn ops_served(&self) -> u64 {
        self.ops
    }

    /// Total busy time of the service (summed over queues).
    pub fn busy_time(&self) -> f64 {
        match &self.kind {
            Kind::Dedicated { queue, .. } => queue.busy_time(),
            Kind::Distributed { queues, .. } => queues.iter().map(|q| q.busy_time()).sum(),
        }
    }

    /// Time the service drains (last completion).
    pub fn drained_at(&self) -> f64 {
        match &self.kind {
            Kind::Dedicated { queue, .. } => queue.next_free(),
            Kind::Distributed { queues, .. } => {
                queues.iter().map(|q| q.next_free()).fold(0.0, f64::max)
            }
        }
    }
}

/// Stable hash for directory keys (dependency-free FNV-1a).
pub fn dir_hash(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dedicated(alpha: f64) -> MetadataService {
        MetadataService::new(&MdsConfig::Dedicated {
            base_op: 1e-3,
            contention_alpha: alpha,
            contention_cap: 1e6,
        })
    }

    #[test]
    fn dedicated_serializes_ops() {
        let mut m = dedicated(0.0);
        let c1 = m.op(0.0, MetaOp::Create, 1);
        let c2 = m.op(0.0, MetaOp::Create, 2);
        assert!((c1 - 1e-3).abs() < 1e-12);
        assert!((c2 - 2e-3).abs() < 1e-12);
        assert_eq!(m.ops_served(), 2);
    }

    #[test]
    fn contention_inflates_under_backlog() {
        // Without contention, N creates take N*base.
        let mut flat = dedicated(0.0);
        for _ in 0..100 {
            flat.op(0.0, MetaOp::Create, 1);
        }
        // With contention, the same storm takes much longer (superlinear).
        let mut thrash = dedicated(0.1);
        for _ in 0..100 {
            thrash.op(0.0, MetaOp::Create, 1);
        }
        assert!((flat.drained_at() - 0.1).abs() < 1e-9);
        assert!(
            thrash.drained_at() > 3.0 * flat.drained_at(),
            "contention model should superlinearly inflate create storms: {} vs {}",
            thrash.drained_at(),
            flat.drained_at()
        );
    }

    #[test]
    fn spaced_arrivals_avoid_contention() {
        let mut m = dedicated(0.5);
        let mut t = 0.0;
        for i in 0..50 {
            // Arrive only after the previous op drained: zero backlog.
            t = m.op(i as f64 * 0.01, MetaOp::Create, 1);
        }
        assert!((t - (49.0 * 0.01 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn distributed_spreads_by_directory() {
        let mut m = MetadataService::new(&MdsConfig::Distributed {
            base_op: 1e-3,
            servers: 4,
        });
        // Ops on 4 different dirs at t=0 all finish in one base period.
        let mut worst: f64 = 0.0;
        for d in 0..4u64 {
            worst = worst.max(m.op(0.0, MetaOp::Create, d));
        }
        assert!(worst <= 1e-3 + 1e-12);
        // Same dir serializes.
        let c = m.op(0.0, MetaOp::Create, 0);
        assert!(c > 1e-3);
    }

    #[test]
    fn op_weights_order_costs() {
        let mut m = dedicated(0.0);
        let create = m.op(10.0, MetaOp::Create, 1) - 10.0;
        let mut m = dedicated(0.0);
        let stat = m.op(10.0, MetaOp::Stat, 1) - 10.0;
        assert!(create > stat);
    }

    #[test]
    fn dir_hash_is_stable_and_spreads() {
        assert_eq!(dir_hash("/a/b"), dir_hash("/a/b"));
        assert_ne!(dir_hash("/a/b"), dir_hash("/a/c"));
    }
}
