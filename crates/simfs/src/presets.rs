//! Platform presets: Table I of the paper, plus helpers.
//!
//! The *structural* numbers (nodes, cores, server counts, disk classes)
//! come straight from Table I. The *behavioural* constants (effective lane
//! bandwidth, lock latencies, cache thresholds, MDS service times) are
//! calibrated so the simulator reproduces the bandwidth envelopes the
//! paper measured on each machine — see EXPERIMENTS.md for the calibration
//! record. Theoretical peaks are deliberately not used: the paper's own
//! measurements run far below them (Fig 3 tops out near 250 MB/s on a
//! "4 GB/s" GPFS setup), and the shapes depend on the effective rates.

use crate::config::{
    units::MIB, CacheConfig, ClusterConfig, FsConfig, LockConfig, MdsConfig, Platform,
};

/// Minerva (University of Warwick): 258 nodes, 2-server GPFS.
///
/// GPFS traits: distributed metadata (no dedicated MDS), fine-grained
/// byte-range locks (only acquisition serialises), modest disk backend
/// (96 × 7.2k-rpm drives behind 2 servers).
pub fn minerva() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 258,
            cores_per_node: 12,
            // QDR InfiniBand, effective per-node file traffic.
            link_bw: 2.0e9,
            mem_bw: 4.0e9,
            syscall_overhead: 2.0e-6,
        },
        fs: FsConfig {
            name: "Minerva GPFS".into(),
            servers: 2,
            // RAID-6 (8+2) arrays behind each server.
            lanes_per_server: 5,
            // Effective streaming rate per array; calibrated to the
            // ~250 MB/s envelope of Fig 3.
            lane_bw: 30.0e6,
            write_bw_scale: 1.0,
            per_op_latency: 4.0e-3,
            read_interference: 0.05,
            stripe_size: MIB,
            stripe_width: 2,
            mds: MdsConfig::Distributed {
                base_op: 0.4e-3,
                servers: 2,
            },
            lock: LockConfig {
                // GPFS byte-range locks: acquisition RPC serialises, plus a
                // share of the transfer under token churn.
                acquire_latency: 1.5e-3,
                hold_transfer_fraction: 0.55,
                revoke_cache_on_shared: true,
            },
            cache: CacheConfig {
                // GPFS client pagepool; MPI-IO Test's 8 MB blocks exceed
                // the per-op threshold, so Fig 3 is uncached either way.
                capacity: 256 * MIB,
                per_op_threshold: 4 * MIB,
                drain_bw: 120.0e6,
                read_capacity: 0,
            },
        },
    }
}

/// Sierra (LLNL OCF): 1,849 nodes, 24-OSS Lustre (`lscratchc`) with a
/// dedicated MDS.
///
/// Lustre traits: extent locks that revoke client caching on shared files,
/// and a single metadata service whose throughput degrades under create
/// storms — the Figure 5 mechanism.
pub fn sierra() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 1849,
            cores_per_node: 12,
            // Effective per-node Lustre client write throughput (RPC
            // pipeline), well under the raw QDR rate.
            link_bw: 500.0e6,
            mem_bw: 5.0e9,
            syscall_overhead: 2.0e-6,
        },
        fs: FsConfig {
            name: "Sierra lscratchc Lustre".into(),
            servers: 24,
            lanes_per_server: 4,
            // Effective per-OST-pool rate; calibrated so the file-per-
            // process envelope peaks near the ~1.65 GB/s of Fig 5.
            lane_bw: 18.0e6,
            write_bw_scale: 1.0,
            per_op_latency: 2.5e-3,
            read_interference: 0.03,
            stripe_size: MIB,
            // Checkpoint volumes stripe wide on lscratchc.
            stripe_width: 24,
            mds: MdsConfig::Dedicated {
                base_op: 0.5e-3,
                // Directory-lock thrash under concurrent create storms
                // (applied to backlog^1.5; see mds.rs).
                contention_alpha: 0.005,
                contention_cap: 1.0e5,
            },
            lock: LockConfig {
                acquire_latency: 2.0e-3,
                hold_transfer_fraction: 0.85,
                revoke_cache_on_shared: true,
            },
            cache: CacheConfig {
                // Lustre max_dirty_mb-style per-client grant, summed over
                // the OSCs a node talks to.
                capacity: 256 * MIB,
                // Per-RPC dirty limit: ~7 MB writes (BT class D at 1,024
                // cores) miss; <2 MB and ~300 KB writes hit.
                per_op_threshold: 4 * MIB,
                // Background writeback per client under a loaded system.
                drain_bw: 40.0e6,
                read_capacity: 0,
            },
        },
    }
}

/// The Minerva login node used for Table II's serial UNIX-tool study: one
/// client, shared GPFS, asymmetric read/write streaming rates.
pub fn login_node() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 1,
            cores_per_node: 12,
            // Login-node effective single-stream ceiling (~165 MB/s — the
            // paper's cat rows: 4 GB in ~25 s).
            link_bw: 165.0e6,
            mem_bw: 4.0e9,
            syscall_overhead: 2.0e-6,
        },
        fs: FsConfig {
            name: "Minerva GPFS (login)".into(),
            servers: 2,
            lanes_per_server: 1,
            // Single-stream read rate ~160 MB/s (cat of 4 GB in ~25 s).
            // Server-side streaming is faster than the client ceiling.
            lane_bw: 400.0e6,
            // Login-node writes run far below reads (the paper's cp rows:
            // ~36 MB/s vs ~160 MB/s reads on the shared GPFS volume).
            write_bw_scale: 0.12,
            per_op_latency: 0.1e-3,
            read_interference: 0.0,
            stripe_size: MIB,
            // GPFS stripes every file across both servers.
            stripe_width: 2,
            mds: MdsConfig::Distributed {
                base_op: 0.4e-3,
                servers: 2,
            },
            lock: LockConfig {
                acquire_latency: 1.5e-3,
                hold_transfer_fraction: 0.0,
                revoke_cache_on_shared: false,
            },
            cache: CacheConfig {
                capacity: 0, // measure the storage path, not the page cache
                per_op_threshold: 0,
                drain_bw: 1.0,
                read_capacity: 0,
            },
        },
    }
}

/// A Zest-style staging tier (related work, Nowoczynski et al. PDSW'08):
/// writes land in a fast log-structured staging area "via the fastest
/// available path" with no read-back, draining to the real file system at
/// non-critical times. Modelled as Sierra with an aggressive client tier:
/// large absorbing caches with slow background drain — checkpoint *write*
/// calls see staging speed; durability waits for the drain.
pub fn zest_staging() -> Platform {
    let mut p = sierra();
    p.fs.name = "Zest-style staging over Lustre".into();
    p.fs.cache = CacheConfig {
        capacity: 8 * 1024 * MIB,
        per_op_threshold: 1024 * MIB,
        drain_bw: 80.0e6,
        read_capacity: 0,
    };
    // The staging tier is per-node and lock-free.
    p.fs.lock.revoke_cache_on_shared = false;
    p
}

/// The fast tier of a burst-buffer pair: a node-local NVMe-class staging
/// device. One server, one lane, NVMe streaming rate, and microsecond-scale
/// per-op latency; no shared-lock or cache machinery (the device is
/// node-private). The `staging2` figure reads its bandwidth/latency numbers
/// from here to model where `TieredBacking` lands writes.
pub fn tier_fast() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 1,
            cores_per_node: 12,
            link_bw: 8.0e9,
            mem_bw: 8.0e9,
            syscall_overhead: 1.0e-6,
        },
        fs: FsConfig {
            name: "burst-buffer NVMe tier".into(),
            servers: 1,
            lanes_per_server: 1,
            // Effective single-device NVMe streaming write rate.
            lane_bw: 2.0e9,
            write_bw_scale: 1.0,
            // Flash translation layer + kernel path, no network round-trip.
            per_op_latency: 20.0e-6,
            read_interference: 0.0,
            stripe_size: MIB,
            stripe_width: 1,
            mds: MdsConfig::Distributed {
                base_op: 10.0e-6,
                servers: 1,
            },
            lock: LockConfig {
                acquire_latency: 0.0,
                hold_transfer_fraction: 0.0,
                revoke_cache_on_shared: false,
            },
            cache: CacheConfig {
                capacity: 0, // measure the device, not DRAM
                per_op_threshold: 0,
                drain_bw: 1.0,
                read_capacity: 0,
            },
        },
    }
}

/// The slow tier of a burst-buffer pair: a shared parallel-file-system
/// volume seen from one client. Modest effective streaming rate and
/// millisecond-scale per-op latency (RPC + disk seek), the combination that
/// makes many small synchronous backing ops expensive — exactly what the
/// batched/tiered backends amortise.
pub fn tier_slow() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 1,
            cores_per_node: 12,
            link_bw: 2.0e9,
            mem_bw: 4.0e9,
            syscall_overhead: 2.0e-6,
        },
        fs: FsConfig {
            name: "shared PFS tier".into(),
            servers: 2,
            lanes_per_server: 4,
            // Effective per-array rate; a single client sees ~200 MB/s.
            lane_bw: 25.0e6,
            write_bw_scale: 1.0,
            // Server RPC + 7.2k-rpm seek per operation.
            per_op_latency: 3.0e-3,
            read_interference: 0.05,
            stripe_size: MIB,
            stripe_width: 2,
            mds: MdsConfig::Distributed {
                base_op: 0.4e-3,
                servers: 2,
            },
            lock: LockConfig {
                acquire_latency: 1.5e-3,
                hold_transfer_fraction: 0.5,
                revoke_cache_on_shared: true,
            },
            cache: CacheConfig {
                capacity: 0, // measure the storage path, not the page cache
                per_op_threshold: 0,
                drain_bw: 1.0,
                read_capacity: 0,
            },
        },
    }
}

/// A small deterministic platform for unit tests: 4 nodes, 2 servers.
pub fn toy() -> Platform {
    Platform {
        cluster: ClusterConfig {
            nodes: 4,
            cores_per_node: 2,
            link_bw: 1.0e9,
            mem_bw: 4.0e9,
            syscall_overhead: 1.0e-6,
        },
        fs: FsConfig {
            name: "toy".into(),
            servers: 2,
            lanes_per_server: 2,
            lane_bw: 100.0e6,
            write_bw_scale: 1.0,
            per_op_latency: 1.0e-3,
            read_interference: 0.0,
            stripe_size: MIB,
            stripe_width: 2,
            mds: MdsConfig::Dedicated {
                base_op: 1.0e-3,
                contention_alpha: 0.1,
                contention_cap: 1.0e4,
            },
            lock: LockConfig {
                acquire_latency: 1.0e-3,
                hold_transfer_fraction: 0.5,
                revoke_cache_on_shared: true,
            },
            cache: CacheConfig {
                capacity: 16 * MIB,
                per_op_threshold: MIB,
                drain_bw: 50.0e6,
                read_capacity: 0,
            },
        },
    }
}

/// Scale helper: fraction of a platform's nodes (sweeps never exceed the
/// machine).
pub fn check_scale(p: &Platform, nodes: usize) -> bool {
    nodes >= 1 && nodes <= p.cluster.nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::units::{GIB, KIB};

    #[test]
    fn table_one_structural_numbers() {
        let m = minerva();
        assert_eq!(m.cluster.nodes, 258);
        assert_eq!(m.cluster.cores_per_node, 12);
        assert_eq!(m.fs.servers, 2);
        assert!(matches!(m.fs.mds, MdsConfig::Distributed { .. }));

        let s = sierra();
        assert_eq!(s.cluster.nodes, 1849);
        assert_eq!(s.fs.servers, 24);
        assert!(matches!(s.fs.mds, MdsConfig::Dedicated { .. }));
        assert!(s.fs.lock.revoke_cache_on_shared);
    }

    #[test]
    fn login_node_is_serial() {
        let l = login_node();
        assert_eq!(l.cluster.nodes, 1);
        assert_eq!(l.fs.cache.capacity, 0);
    }

    #[test]
    fn scale_check() {
        let m = minerva();
        assert!(check_scale(&m, 1));
        assert!(check_scale(&m, 258));
        assert!(!check_scale(&m, 0));
        assert!(!check_scale(&m, 259));
    }

    #[test]
    fn zest_staging_absorbs_checkpoint_writes() {
        use crate::fs::SimFs;
        let p = zest_staging();
        let mut f = SimFs::new(p);
        let (t, id) = f.create(0.0, "/ckpt", None).unwrap();
        f.open(t, "/ckpt", true).unwrap();
        // A 64 MiB write completes at memory speed into the staging tier...
        let c = f.write(t, 0, id, 0, 64 * MIB).unwrap();
        assert!(c - t < 0.1, "staged write too slow: {}", c - t);
        assert_eq!(f.stats().cache_hits, 1);
        // ...but durability (fsync) pays the slow drain.
        let d = f.fsync(c, 0, id).unwrap();
        assert!(d - c > 0.5, "drain should be slow: {}", d - c);
    }

    #[test]
    fn effective_peaks_below_theoretical() {
        // The calibrated effective rates must sit well under the paper's
        // quoted theoretical peaks (4 GB/s and 30 GB/s).
        assert!(minerva().peak_storage_bw() < 4.0e9);
        assert!(sierra().peak_storage_bw() < 30.0e9);
    }

    #[test]
    fn tier_presets_are_ordered() {
        let f = tier_fast();
        let s = tier_slow();
        // The whole point of a burst buffer: order-of-magnitude faster
        // streaming and orders-of-magnitude cheaper per-op latency.
        assert!(f.peak_storage_bw() >= 5.0 * s.peak_storage_bw());
        assert!(f.fs.per_op_latency * 50.0 <= s.fs.per_op_latency);
        // Both are single-client views (the staging2 model multiplies by
        // ranks itself).
        assert_eq!(f.cluster.nodes, 1);
        assert_eq!(s.cluster.nodes, 1);
    }

    #[test]
    fn units_are_sane() {
        assert_eq!(KIB * 1024, MIB);
        assert_eq!(MIB * 1024, GIB);
    }
}
