//! Operation tracing: a Darshan-style record of what the simulated file
//! system was asked to do.
//!
//! The related work the paper builds on (its ref [10] is the authors' own
//! I/O tracer) characterises applications by their op streams; the same
//! capability is useful here for debugging workloads and for asserting, in
//! tests, *why* a configuration is slow (how many ops, how many bytes, what
//! sizes) rather than just how slow. Tracing is opt-in and costs one vector
//! push per op when enabled.
//!
//! Records are stored in the unified [`iotrace`] schema (layer `sim`), so a
//! simulated run and a real `ldplfs` run emit byte-compatible JSONL and the
//! same `plfs-tools trace` / `paperbench --emit-json` machinery consumes
//! both. Simulated time (f64 seconds since sim start) is mapped onto the
//! schema's nanosecond fields. Every recorded op is additionally mirrored
//! into [`iotrace::global`] when that sink is enabled, which is how
//! `paperbench` collects per-layer counters without touching each `SimFs`.

use iotrace::{Layer, OpEvent, OpKind};

/// The kind of a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Data write (cached or not).
    Write,
    /// Data read.
    Read,
    /// Metadata operation (create/open/stat/…).
    Meta,
}

impl TraceKind {
    /// The unified-schema op class this kind maps to.
    pub fn op(self) -> OpKind {
        match self {
            TraceKind::Write => OpKind::Write,
            TraceKind::Read => OpKind::Read,
            TraceKind::Meta => OpKind::Meta,
        }
    }

    fn from_op(op: OpKind) -> Option<TraceKind> {
        match op {
            OpKind::Write => Some(TraceKind::Write),
            OpKind::Read => Some(TraceKind::Read),
            OpKind::Meta => Some(TraceKind::Meta),
            _ => None,
        }
    }
}

/// One traced operation, in simulator terms (seconds, file ids).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Operation class.
    pub kind: TraceKind,
    /// Issuing node (metadata ops: usize::MAX).
    pub node: usize,
    /// File id (metadata ops on paths: usize::MAX).
    pub file: usize,
    /// Byte offset (0 for metadata).
    pub offset: u64,
    /// Byte count (0 for metadata).
    pub len: u64,
    /// Arrival time (s).
    pub start: f64,
    /// Completion time (s).
    pub end: f64,
    /// Whether a write was absorbed by the client cache.
    pub cached: bool,
}

fn secs_to_ns(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * 1e9).round() as u64
    }
}

impl TraceRecord {
    /// Convert into the unified schema (layer `sim`, sim-time nanoseconds).
    pub fn to_unified(&self) -> iotrace::TraceRecord {
        let start_ns = secs_to_ns(self.start);
        let end_ns = secs_to_ns(self.end);
        iotrace::TraceRecord {
            layer: Layer::Sim,
            op: self.kind.op(),
            path_id: if self.file == usize::MAX {
                iotrace::NO_PATH
            } else {
                self.file as u32
            },
            node: if self.node == usize::MAX {
                iotrace::NO_NODE
            } else {
                self.node as u32
            },
            fd: -1,
            offset: self.offset,
            bytes: self.len,
            start_ns,
            latency_ns: end_ns.saturating_sub(start_ns),
            hit: self.cached,
        }
    }
}

/// An in-memory trace buffer over unified records.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<iotrace::TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace (records nothing locally; still mirrors into the
    /// global sink when that is enabled).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace.
    pub fn enabled() -> Trace {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Is local recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one op (no local push when disabled). Always mirrored into
    /// [`iotrace::global`] if that sink is enabled, so benchmark harnesses
    /// see `sim`-layer counters without reaching into each file system.
    pub fn record(&mut self, rec: TraceRecord) {
        let g = iotrace::global();
        if !self.enabled && !g.is_enabled() {
            return;
        }
        let unified = rec.to_unified();
        if g.is_enabled() {
            let mut ev = OpEvent::new(Layer::Sim, unified.op)
                .offset(unified.offset)
                .bytes(unified.bytes)
                .hit(unified.hit);
            if unified.node != iotrace::NO_NODE {
                ev = ev.node(unified.node);
            }
            g.record_at(unified.start_ns, unified.latency_ns, ev);
        }
        if self.enabled {
            self.records.push(unified);
        }
    }

    /// All records, in issue order (unified schema).
    pub fn records(&self) -> &[iotrace::TraceRecord] {
        &self.records
    }

    /// Summary statistics per kind: (count, bytes, busy seconds).
    pub fn summary(&self, kind: TraceKind) -> (usize, u64, f64) {
        let op = kind.op();
        let mut count = 0;
        let mut bytes = 0;
        let mut busy_ns = 0u64;
        for r in &self.records {
            if r.op == op {
                count += 1;
                bytes += r.bytes;
                busy_ns += r.latency_ns;
            }
        }
        (count, bytes, busy_ns as f64 / 1e9)
    }

    /// Histogram of op sizes by power-of-two bucket (bucket i holds sizes
    /// in `[2^i, 2^(i+1))`); index 0 also holds zero-length ops.
    pub fn size_histogram(&self, kind: TraceKind) -> Vec<(u64, usize)> {
        let op = kind.op();
        let mut buckets = std::collections::BTreeMap::new();
        for r in &self.records {
            if r.op == op {
                let b = if r.bytes == 0 {
                    0
                } else {
                    63 - r.bytes.leading_zeros() as u64
                };
                *buckets.entry(1u64 << b).or_insert(0) += 1;
            }
        }
        buckets.into_iter().collect()
    }

    /// Per-op latency histogram in the unified log2-ns bucketing, for one
    /// kind. Bucket i counts ops with latency in `[2^i, 2^(i+1))` ns.
    pub fn latency_histogram(&self, kind: TraceKind) -> [u64; iotrace::NBUCKETS] {
        let op = kind.op();
        let mut hist = [0u64; iotrace::NBUCKETS];
        for r in &self.records {
            if r.op == op {
                hist[iotrace::bucket_of(r.latency_ns)] += 1;
            }
        }
        hist
    }

    /// Render the trace as JSON lines (one unified record per line). Paths
    /// are not interned in the simulator, so records carry file ids only.
    pub fn to_jsonl(&self) -> String {
        self.records
            .iter()
            .map(|r| iotrace::record_to_json(r, None).to_json())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Decode one JSONL line back into simulator terms (best effort; ops
    /// outside read/write/meta come back as `None`).
    pub fn record_from_jsonl(line: &str) -> Option<TraceRecord> {
        let v = jsonlite::parse(line).ok()?;
        let (r, _path) = iotrace::record_from_json(&v)?;
        let kind = TraceKind::from_op(r.op)?;
        Some(TraceRecord {
            kind,
            node: if r.node == iotrace::NO_NODE {
                usize::MAX
            } else {
                r.node as usize
            },
            file: if r.path_id == iotrace::NO_PATH {
                usize::MAX
            } else {
                r.path_id as usize
            },
            offset: r.offset,
            len: r.bytes,
            start: r.start_ns as f64 / 1e9,
            end: (r.start_ns + r.latency_ns) as f64 / 1e9,
            cached: r.hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: TraceKind, len: u64, start: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind,
            node: 0,
            file: 0,
            offset: 0,
            len,
            start,
            end,
            cached: false,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(rec(TraceKind::Write, 100, 0.0, 1.0));
        assert!(t.records().is_empty());
    }

    #[test]
    fn summary_aggregates_per_kind() {
        let mut t = Trace::enabled();
        t.record(rec(TraceKind::Write, 100, 0.0, 1.0));
        t.record(rec(TraceKind::Write, 200, 1.0, 1.5));
        t.record(rec(TraceKind::Read, 50, 0.0, 0.25));
        let (c, b, busy) = t.summary(TraceKind::Write);
        assert_eq!((c, b), (2, 300));
        assert!((busy - 1.5).abs() < 1e-9);
        assert_eq!(t.summary(TraceKind::Meta).0, 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut t = Trace::enabled();
        for len in [1u64, 3, 4, 5, 1024, 1500] {
            t.record(rec(TraceKind::Write, len, 0.0, 0.0));
        }
        let h = t.size_histogram(TraceKind::Write);
        // 1 -> bucket 1; 3 -> 2; 4,5 -> 4; 1024,1500 -> 1024.
        assert_eq!(h, vec![(1, 1), (2, 1), (4, 2), (1024, 2)]);
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let mut t = Trace::enabled();
        t.record(rec(TraceKind::Read, 42, 1.0, 2.0));
        let line = t.to_jsonl();
        // Unified schema: layer/op tags plus byte counts.
        assert!(line.contains("\"layer\":\"sim\""), "line: {line}");
        assert!(line.contains("\"op\":\"read\""), "line: {line}");
        assert!(line.contains("\"bytes\":42"), "line: {line}");
        let back = Trace::record_from_jsonl(&line).expect("decodes");
        assert_eq!(back.len, 42);
        assert!(matches!(back.kind, TraceKind::Read));
        assert!((back.start - 1.0).abs() < 1e-9);
        assert!((back.end - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_uses_log2_ns_buckets() {
        let mut t = Trace::enabled();
        // 1s latency = 1e9 ns -> bucket floor(log2(1e9)) = 29.
        t.record(rec(TraceKind::Write, 8, 0.0, 1.0));
        let h = t.latency_histogram(TraceKind::Write);
        assert_eq!(h[29], 1);
        assert_eq!(h.iter().sum::<u64>(), 1);
    }
}
