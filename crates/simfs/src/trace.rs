//! Operation tracing: a Darshan-style record of what the simulated file
//! system was asked to do.
//!
//! The related work the paper builds on (its ref [10] is the authors' own
//! I/O tracer) characterises applications by their op streams; the same
//! capability is useful here for debugging workloads and for asserting, in
//! tests, *why* a configuration is slow (how many ops, how many bytes, what
//! sizes) rather than just how slow. Tracing is opt-in and costs one vector
//! push per op when enabled.

use serde::Serialize;

/// The kind of a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// Data write (cached or not).
    Write,
    /// Data read.
    Read,
    /// Metadata operation (create/open/stat/…).
    Meta,
}

/// One traced operation.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRecord {
    /// Operation class.
    pub kind: TraceKind,
    /// Issuing node (metadata ops: usize::MAX).
    pub node: usize,
    /// File id (metadata ops on paths: usize::MAX).
    pub file: usize,
    /// Byte offset (0 for metadata).
    pub offset: u64,
    /// Byte count (0 for metadata).
    pub len: u64,
    /// Arrival time (s).
    pub start: f64,
    /// Completion time (s).
    pub end: f64,
    /// Whether a write was absorbed by the client cache.
    pub cached: bool,
}

/// An in-memory trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace.
    pub fn enabled() -> Trace {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one op (no-op when disabled).
    pub fn record(&mut self, rec: TraceRecord) {
        if self.enabled {
            self.records.push(rec);
        }
    }

    /// All records, in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Summary statistics per kind: (count, bytes, busy seconds).
    pub fn summary(&self, kind: TraceKind) -> (usize, u64, f64) {
        let mut count = 0;
        let mut bytes = 0;
        let mut busy = 0.0;
        for r in &self.records {
            if r.kind == kind {
                count += 1;
                bytes += r.len;
                busy += r.end - r.start;
            }
        }
        (count, bytes, busy)
    }

    /// Histogram of op sizes by power-of-two bucket (bucket i holds sizes
    /// in `[2^i, 2^(i+1))`); index 0 also holds zero-length ops.
    pub fn size_histogram(&self, kind: TraceKind) -> Vec<(u64, usize)> {
        let mut buckets = std::collections::BTreeMap::new();
        for r in &self.records {
            if r.kind == kind {
                let b = if r.len == 0 { 0 } else { 63 - r.len.leading_zeros() as u64 };
                *buckets.entry(1u64 << b).or_insert(0) += 1;
            }
        }
        buckets.into_iter().collect()
    }

    /// Render the trace as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        self.records
            .iter()
            .map(|r| serde_json::to_string(r).unwrap_or_default())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: TraceKind, len: u64, start: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind,
            node: 0,
            file: 0,
            offset: 0,
            len,
            start,
            end,
            cached: false,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(rec(TraceKind::Write, 100, 0.0, 1.0));
        assert!(t.records().is_empty());
    }

    #[test]
    fn summary_aggregates_per_kind() {
        let mut t = Trace::enabled();
        t.record(rec(TraceKind::Write, 100, 0.0, 1.0));
        t.record(rec(TraceKind::Write, 200, 1.0, 1.5));
        t.record(rec(TraceKind::Read, 50, 0.0, 0.25));
        let (c, b, busy) = t.summary(TraceKind::Write);
        assert_eq!((c, b), (2, 300));
        assert!((busy - 1.5).abs() < 1e-12);
        assert_eq!(t.summary(TraceKind::Meta).0, 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut t = Trace::enabled();
        for len in [1u64, 3, 4, 5, 1024, 1500] {
            t.record(rec(TraceKind::Write, len, 0.0, 0.0));
        }
        let h = t.size_histogram(TraceKind::Write);
        // 1 -> bucket 1; 3 -> 2; 4,5 -> 4; 1024,1500 -> 1024.
        assert_eq!(h, vec![(1, 1), (2, 1), (4, 2), (1024, 2)]);
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let mut t = Trace::enabled();
        t.record(rec(TraceKind::Read, 42, 1.0, 2.0));
        let line = t.to_jsonl();
        assert!(line.contains("\"Read\""));
        assert!(line.contains("\"len\":42"));
    }
}
