//! The shared-file lock model.
//!
//! Parallel file systems hand out byte-range (GPFS) or extent (Lustre)
//! locks. A file with a single writer keeps its lock cached — writes pay
//! nothing. A file with several writers pays per write:
//!
//! * an acquisition latency (lock manager RPC), and
//! * serialisation of the fraction of the transfer that must happen under
//!   the lock (`hold_transfer_fraction`): 0 models GPFS-style fine-grained
//!   range locks where only acquisition serialises; values near 1 model
//!   pathological extent ping-pong where transfers effectively serialise.
//!
//! This is the mechanism that keeps the paper's N-to-1 MPI-IO curves flat
//! while PLFS (N unique files, no conflicts) scales with the server count.

use crate::config::LockConfig;
use crate::queue::SingleQueue;

/// Lock state for one file.
#[derive(Debug, Default)]
pub struct FileLock {
    queue: SingleQueue,
    conflicts: u64,
}

impl FileLock {
    /// New (uncontended) lock.
    pub fn new() -> FileLock {
        FileLock::default()
    }

    /// Acquire for a write of `len` bytes arriving at `t`, where the
    /// transfer itself would take `transfer_time` seconds and the file
    /// currently has `writers` concurrent writers. Returns the time the
    /// caller may *start* its transfer: the beginning of its lock window
    /// plus the acquisition RPC. The window occupies the lock for
    /// `acquire_latency + fraction × transfer` — the caller's own transfer
    /// overlaps its window; only *other* writers are excluded during it.
    pub fn acquire(&mut self, cfg: &LockConfig, t: f64, transfer_time: f64, writers: usize) -> f64 {
        if writers <= 1 {
            // Lock cached at the sole writer: free.
            return t;
        }
        self.conflicts += 1;
        let hold = cfg.acquire_latency + cfg.hold_transfer_fraction * transfer_time;
        let window_end = self.queue.serve(t, hold);
        window_end - hold + cfg.acquire_latency
    }

    /// How many contended acquisitions this file has seen.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(frac: f64) -> LockConfig {
        LockConfig {
            acquire_latency: 0.001,
            hold_transfer_fraction: frac,
            revoke_cache_on_shared: true,
        }
    }

    #[test]
    fn single_writer_is_free() {
        let mut l = FileLock::new();
        assert_eq!(l.acquire(&cfg(1.0), 5.0, 10.0, 1), 5.0);
        assert_eq!(l.conflicts(), 0);
    }

    #[test]
    fn acquisition_serializes_across_writers() {
        let mut l = FileLock::new();
        let c = cfg(0.0);
        let a = l.acquire(&c, 0.0, 1.0, 4);
        let b = l.acquire(&c, 0.0, 1.0, 4);
        assert!((a - 0.001).abs() < 1e-12);
        assert!(
            (b - 0.002).abs() < 1e-12,
            "second writer queues on the lock"
        );
        assert_eq!(l.conflicts(), 2);
    }

    #[test]
    fn hold_fraction_serializes_transfers() {
        let mut l = FileLock::new();
        let c = cfg(1.0);
        let a = l.acquire(&c, 0.0, 2.0, 2);
        let b = l.acquire(&c, 0.0, 2.0, 2);
        // The first writer starts almost immediately (its own transfer
        // overlaps its window); the second waits out the full transfer.
        assert!(a < 0.1, "a={a}");
        assert!(b >= 2.0, "b={b}");
    }

    #[test]
    fn partial_hold_fraction_interpolates() {
        let mut full = FileLock::new();
        let mut half = FileLock::new();
        for _ in 0..4 {
            full.acquire(&cfg(1.0), 0.0, 2.0, 2);
            half.acquire(&cfg(0.5), 0.0, 2.0, 2);
        }
        let f = full.acquire(&cfg(1.0), 0.0, 2.0, 2);
        let h = half.acquire(&cfg(0.5), 0.0, 2.0, 2);
        assert!(h < f, "lower fraction = less serialisation");
    }
}
