//! # simfs — a discrete-event parallel storage simulator
//!
//! The substitute for the paper's two testbeds (Minerva/GPFS and
//! Sierra/Lustre, Table I), which we obviously cannot schedule time on.
//! Rather than replaying measured curves, the simulator models the four
//! mechanisms the paper's analysis attributes its results to, and lets the
//! shapes emerge:
//!
//! 1. **shared-file lock serialisation** ([`locks`]) — keeps N-to-1 MPI-IO
//!    flat while file-per-process scales;
//! 2. **stripe/server parallelism** ([`fs`]) — PLFS's many droppings spread
//!    over many servers;
//! 3. **client write-back caching** ([`cache`]) — BT's small-write
//!    "bandwidths" above storage speed, and the class-D cache cliff;
//! 4. **metadata service queueing** ([`mds`]) — the dedicated-MDS create
//!    storm that collapses PLFS at scale on Lustre (Fig 5) but not on
//!    GPFS's distributed metadata.
//!
//! Time is explicit: every operation takes an arrival time and returns a
//! completion time; the MPI-IO layer (crate `mpiio`) threads per-rank
//! clocks through. All queueing is deterministic FIFO — identical inputs
//! reproduce identical timings.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod fs;
pub mod locks;
pub mod mds;
pub mod mdstorm;
pub mod presets;
pub mod queue;
pub mod readpath;
pub mod trace;

pub use config::{CacheConfig, ClusterConfig, FsConfig, LockConfig, MdsConfig, Platform};
pub use fs::{FileId, FsStats, SimError, SimFs, SimResult};
pub use mds::{MetaOp, MetadataService};
pub use mdstorm::{create_storm, storm_sweep, OpenProfile, StormOutcome};
pub use queue::{MultiQueue, SingleQueue};
pub use trace::{Trace, TraceKind, TraceRecord};
