//! MDS create-storm projection: what a per-open metadata-op profile costs
//! at scale.
//!
//! `paperbench metadata` measures — with the plfs crate's `MeterBacking` —
//! how many backing metadata ops one logical `open()` fans out into, before
//! and after the metadata fast path. This module replays that profile for N
//! simultaneous processes against the [`MetadataService`] model (the same
//! dedicated-MDS queue that reproduces the paper's Figure 5 collapse) and
//! reports the time until the storm drains: the projected time-to-open.
//!
//! The interesting comparison is not absolute seconds but the *shape*: an
//! eager profile (every process creating open markers and probing the
//! container) feeds the superlinear create-contention term, while the
//! cached/lazy profile keeps the MDS in its flat regime to much higher
//! process counts.

use crate::config::MdsConfig;
use crate::mds::{dir_hash, MetaOp, MetadataService};

/// How many of each MDS op one logical `open()` issues — measured, not
/// assumed (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenProfile {
    /// Entry creations (droppings, open markers, hostdirs).
    pub creates: u64,
    /// Lookups/opens of existing entries (access file reads).
    pub opens: u64,
    /// Attribute reads (exists/stat probes).
    pub stats: u64,
    /// Entry removals.
    pub removes: u64,
    /// Directory listings (openhosts scans).
    pub readdirs: u64,
}

impl OpenProfile {
    /// Total metadata ops per open.
    pub fn total(&self) -> u64 {
        self.creates + self.opens + self.stats + self.removes + self.readdirs
    }

    fn ops(&self) -> Vec<MetaOp> {
        let mut v = Vec::with_capacity(self.total() as usize);
        v.extend(std::iter::repeat_n(MetaOp::Create, self.creates as usize));
        v.extend(std::iter::repeat_n(MetaOp::Open, self.opens as usize));
        v.extend(std::iter::repeat_n(MetaOp::Stat, self.stats as usize));
        v.extend(std::iter::repeat_n(MetaOp::Remove, self.removes as usize));
        v.extend(std::iter::repeat_n(MetaOp::Readdir, self.readdirs as usize));
        v
    }
}

/// Outcome of replaying one storm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormOutcome {
    /// Processes opening simultaneously.
    pub procs: u64,
    /// Total metadata ops the storm issued.
    pub ops: u64,
    /// Time until the MDS drains every op: the projected time for the
    /// slowest process to finish its open (seconds).
    pub time_to_open: f64,
}

/// Replay `procs` processes simultaneously opening one shared file at t=0,
/// each issuing `profile`'s ops, against a fresh metadata service.
///
/// Processes proceed in lockstep (round-robin over the op list), which is
/// how a synchronised MPI job arrives at the MDS; per-process hostdir paths
/// spread the ops when the metadata service is distributed.
pub fn create_storm(cfg: &MdsConfig, procs: u64, profile: &OpenProfile) -> StormOutcome {
    let mut mds = MetadataService::new(cfg);
    let ops = profile.ops();
    for op in &ops {
        for p in 0..procs {
            // Creates land in the process's hostdir; probes hit the shared
            // container directory itself.
            let h = match op {
                MetaOp::Create | MetaOp::Remove => dir_hash(&format!("/shared/hostdir.{p}")),
                _ => dir_hash("/shared"),
            };
            mds.op(0.0, *op, h);
        }
    }
    StormOutcome {
        procs,
        ops: mds.ops_served(),
        time_to_open: mds.drained_at(),
    }
}

/// [`create_storm`] across a sweep of process counts.
pub fn storm_sweep(cfg: &MdsConfig, procs: &[u64], profile: &OpenProfile) -> Vec<StormOutcome> {
    procs
        .iter()
        .map(|&n| create_storm(cfg, n, profile))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn eager() -> OpenProfile {
        OpenProfile {
            creates: 3,
            opens: 1,
            stats: 2,
            removes: 1,
            readdirs: 1,
        }
    }

    fn cached() -> OpenProfile {
        OpenProfile {
            creates: 1,
            ..OpenProfile::default()
        }
    }

    fn mds() -> MdsConfig {
        presets::sierra().fs.mds
    }

    #[test]
    fn cheaper_profile_opens_faster_at_every_scale() {
        for procs in [64, 256, 1024, 4096] {
            let e = create_storm(&mds(), procs, &eager());
            let c = create_storm(&mds(), procs, &cached());
            assert!(
                c.time_to_open < e.time_to_open,
                "{procs} procs: cached {} !< eager {}",
                c.time_to_open,
                e.time_to_open
            );
            assert_eq!(e.ops, procs * eager().total());
        }
    }

    #[test]
    fn eager_storms_collapse_superlinearly() {
        let small = create_storm(&mds(), 256, &eager());
        let big = create_storm(&mds(), 4096, &eager());
        // 16x the processes must cost much more than 16x the time on a
        // dedicated MDS — that is the Figure 5 mechanism.
        assert!(
            big.time_to_open > 16.0 * 4.0 * small.time_to_open,
            "no collapse: {} vs {}",
            big.time_to_open,
            small.time_to_open
        );
    }

    #[test]
    fn storms_are_deterministic() {
        let a = create_storm(&mds(), 512, &eager());
        let b = create_storm(&mds(), 512, &eager());
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_covers_every_count() {
        let out = storm_sweep(&mds(), &[2, 4, 8], &cached());
        assert_eq!(out.len(), 3);
        assert!(out
            .windows(2)
            .all(|w| w[0].time_to_open <= w[1].time_to_open));
    }
}
