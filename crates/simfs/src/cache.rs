//! The client write-back cache model.
//!
//! Each compute node has a dirty-data budget that drains to the servers in
//! the background. A write is *absorbed* (completes at memory speed) when it
//! is small enough (`per_op_threshold`, the Lustre per-RPC dirty limit) and
//! the node has budget left; otherwise it goes write-through. `fsync`/close
//! must wait for the file's dirty bytes to drain.
//!
//! This is the mechanism behind Figure 4: BT class C's ~300 KB writes are
//! absorbed and the benchmark observes memory bandwidth; class D's ~7 MB
//! writes at 1,024 cores miss the threshold and fall back to disk speed;
//! class D at 4,096 cores (<2 MB writes) is absorbed again.

use crate::config::CacheConfig;
use std::collections::HashMap;

/// Per-node cache state with leaky-bucket drain.
#[derive(Debug)]
pub struct NodeCache {
    capacity: f64,
    threshold: u64,
    drain_bw: f64,
    /// Dirty bytes as of `last_t`.
    dirty: f64,
    last_t: f64,
    /// Dirty bytes per file (for fsync of one file).
    per_file: HashMap<u64, f64>,
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// New cache from config.
    pub fn new(cfg: &CacheConfig) -> NodeCache {
        NodeCache {
            capacity: cfg.capacity as f64,
            threshold: cfg.per_op_threshold,
            drain_bw: cfg.drain_bw,
            dirty: 0.0,
            last_t: 0.0,
            per_file: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Advance the leaky bucket to time `t`.
    fn settle(&mut self, t: f64) {
        if t > self.last_t {
            let drained = (t - self.last_t) * self.drain_bw;
            let factor = if self.dirty > 0.0 {
                ((self.dirty - drained).max(0.0)) / self.dirty
            } else {
                0.0
            };
            self.dirty = (self.dirty - drained).max(0.0);
            // Scale per-file dirt proportionally (files drain together).
            if factor == 0.0 {
                self.per_file.clear();
            } else {
                for v in self.per_file.values_mut() {
                    *v *= factor;
                }
            }
            self.last_t = t;
        }
    }

    /// Try to absorb a write of `len` bytes to `file` at time `t`.
    /// Returns true if absorbed (caller completes it at memory speed);
    /// false means write-through.
    pub fn absorb(&mut self, t: f64, file: u64, len: u64, cacheable: bool) -> bool {
        self.settle(t);
        if !cacheable || self.capacity <= 0.0 || len > self.threshold {
            self.misses += 1;
            return false;
        }
        if self.dirty + len as f64 > self.capacity {
            self.misses += 1;
            return false;
        }
        self.dirty += len as f64;
        *self.per_file.entry(file).or_insert(0.0) += len as f64;
        self.hits += 1;
        true
    }

    /// Wait for `file`'s dirty bytes to drain, starting at `t`. Returns the
    /// completion time (== `t` if the file has nothing dirty).
    ///
    /// Approximation: the whole bucket drains FIFO at `drain_bw`, so a
    /// single file's flush waits for its *share* of the backlog — we charge
    /// the full current backlog, which is exact when one file dominates a
    /// node's dirt (the checkpointing pattern).
    pub fn flush_file(&mut self, t: f64, file: u64) -> f64 {
        self.settle(t);
        let file_dirty = self.per_file.get(&file).copied().unwrap_or(0.0);
        if file_dirty <= 0.0 || self.drain_bw <= 0.0 {
            return t;
        }
        let wait = self.dirty / self.drain_bw;
        let done = t + wait;
        self.dirty = 0.0;
        self.per_file.clear();
        self.last_t = done;
        done
    }

    /// Current dirty bytes (after settling to `t`).
    pub fn dirty_at(&mut self, t: f64) -> f64 {
        self.settle(t);
        self.dirty
    }

    /// Absorbed write count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Write-through count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::units::MIB;

    fn cache() -> NodeCache {
        NodeCache::new(&CacheConfig {
            capacity: 64 * MIB,
            per_op_threshold: 4 * MIB,
            drain_bw: 1.0 * MIB as f64, // 1 MiB/s for easy arithmetic
        })
    }

    #[test]
    fn small_writes_absorb_large_ones_do_not() {
        let mut c = cache();
        assert!(c.absorb(0.0, 1, MIB, true));
        assert!(!c.absorb(0.0, 1, 8 * MIB, true), "over per-op threshold");
        assert!(!c.absorb(0.0, 1, MIB, false), "caching disabled by locks");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn capacity_limits_absorption() {
        let mut c = cache();
        for _ in 0..16 {
            assert!(c.absorb(0.0, 1, 4 * MIB, true));
        }
        // 64 MiB dirty: full.
        assert!(!c.absorb(0.0, 1, 4 * MIB, true));
    }

    #[test]
    fn bucket_drains_over_time() {
        let mut c = cache();
        c.absorb(0.0, 1, 4 * MIB, true);
        assert!((c.dirty_at(1.0) - 3.0 * MIB as f64).abs() < 1.0);
        assert_eq!(c.dirty_at(10.0), 0.0);
        // Budget regenerated: can absorb again.
        assert!(c.absorb(10.0, 1, 4 * MIB, true));
    }

    #[test]
    fn flush_waits_for_backlog() {
        let mut c = cache();
        c.absorb(0.0, 7, 4 * MIB, true);
        let done = c.flush_file(0.0, 7);
        assert!((done - 4.0).abs() < 1e-9, "4 MiB at 1 MiB/s");
        assert_eq!(c.dirty_at(done), 0.0);
        // Flushing a clean file is free.
        assert_eq!(c.flush_file(done, 7), done);
        assert_eq!(c.flush_file(done, 99), done);
    }

    #[test]
    fn per_file_dirt_tracks_proportional_drain() {
        let mut c = cache();
        c.absorb(0.0, 1, 2 * MIB, true);
        c.absorb(0.0, 2, 2 * MIB, true);
        // After 2 s, 2 MiB drained: both files halved; flush of file 1
        // still waits for the whole remaining bucket (2 MiB -> 2 s).
        let done = c.flush_file(2.0, 1);
        assert!((done - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = NodeCache::new(&CacheConfig {
            capacity: 0,
            per_op_threshold: 4 * MIB,
            drain_bw: 1e6,
        });
        assert!(!c.absorb(0.0, 1, 1024, true));
    }
}
