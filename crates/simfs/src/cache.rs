//! The client write-back cache model.
//!
//! Each compute node has a dirty-data budget that drains to the servers in
//! the background. A write is *absorbed* (completes at memory speed) when it
//! is small enough (`per_op_threshold`, the Lustre per-RPC dirty limit) and
//! the node has budget left; otherwise it goes write-through. `fsync`/close
//! must wait for the file's dirty bytes to drain.
//!
//! This is the mechanism behind Figure 4: BT class C's ~300 KB writes are
//! absorbed and the benchmark observes memory bandwidth; class D's ~7 MB
//! writes at 1,024 cores miss the threshold and fall back to disk speed;
//! class D at 4,096 cores (<2 MB writes) is absorbed again.
//!
//! The cache also carries a *clean* read side (`read_capacity`): merged
//! `[start, end)` extents a node has fetched before, evicted whole-file
//! LRU under the byte budget. A read fully covered by a node's extents is
//! absorbed at memory bandwidth; any write invalidates the overlapping
//! extents on every node. This is the cache-aware read cost term that the
//! `readcache` figure measures at the PLFS layer.

use crate::config::CacheConfig;
use std::collections::HashMap;

/// Per-node cache state with leaky-bucket drain.
#[derive(Debug)]
pub struct NodeCache {
    capacity: f64,
    threshold: u64,
    drain_bw: f64,
    /// Dirty bytes as of `last_t`.
    dirty: f64,
    last_t: f64,
    /// Dirty bytes per file (for fsync of one file).
    per_file: HashMap<u64, f64>,
    hits: u64,
    misses: u64,
    /// Clean read-cache byte budget (0 = read caching off).
    read_capacity: u64,
    /// Clean bytes currently resident across all files.
    read_resident: u64,
    /// Files with resident extents, least recently touched first.
    read_lru: Vec<u64>,
    /// Sorted, disjoint `[start, end)` extents per file.
    read_extents: HashMap<u64, Vec<(u64, u64)>>,
    read_hits: u64,
    read_misses: u64,
}

/// Insert `[start, end)` into a sorted, disjoint extent list, merging
/// overlapping and adjacent neighbours.
fn insert_extent(ext: &mut Vec<(u64, u64)>, mut start: u64, mut end: u64) {
    let mut out = Vec::with_capacity(ext.len() + 1);
    for &(s, e) in ext.iter() {
        if e < start || end < s {
            out.push((s, e));
        } else {
            start = start.min(s);
            end = end.max(e);
        }
    }
    out.push((start, end));
    out.sort_unstable();
    *ext = out;
}

/// Remove `[start, end)` from a sorted, disjoint extent list.
fn subtract_extent(ext: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    let mut out = Vec::with_capacity(ext.len() + 1);
    for &(s, e) in ext.iter() {
        if e <= start || end <= s {
            out.push((s, e));
            continue;
        }
        if s < start {
            out.push((s, start));
        }
        if end < e {
            out.push((end, e));
        }
    }
    *ext = out;
}

fn extent_bytes(ext: &[(u64, u64)]) -> u64 {
    ext.iter().map(|&(s, e)| e - s).sum()
}

impl NodeCache {
    /// New cache from config.
    pub fn new(cfg: &CacheConfig) -> NodeCache {
        NodeCache {
            capacity: cfg.capacity as f64,
            threshold: cfg.per_op_threshold,
            drain_bw: cfg.drain_bw,
            dirty: 0.0,
            last_t: 0.0,
            per_file: HashMap::new(),
            hits: 0,
            misses: 0,
            read_capacity: cfg.read_capacity,
            read_resident: 0,
            read_lru: Vec::new(),
            read_extents: HashMap::new(),
            read_hits: 0,
            read_misses: 0,
        }
    }

    /// Advance the leaky bucket to time `t`.
    fn settle(&mut self, t: f64) {
        if t > self.last_t {
            let drained = (t - self.last_t) * self.drain_bw;
            let factor = if self.dirty > 0.0 {
                ((self.dirty - drained).max(0.0)) / self.dirty
            } else {
                0.0
            };
            self.dirty = (self.dirty - drained).max(0.0);
            // Scale per-file dirt proportionally (files drain together).
            if factor == 0.0 {
                self.per_file.clear();
            } else {
                for v in self.per_file.values_mut() {
                    *v *= factor;
                }
            }
            self.last_t = t;
        }
    }

    /// Try to absorb a write of `len` bytes to `file` at time `t`.
    /// Returns true if absorbed (caller completes it at memory speed);
    /// false means write-through.
    pub fn absorb(&mut self, t: f64, file: u64, len: u64, cacheable: bool) -> bool {
        self.settle(t);
        if !cacheable || self.capacity <= 0.0 || len > self.threshold {
            self.misses += 1;
            return false;
        }
        if self.dirty + len as f64 > self.capacity {
            self.misses += 1;
            return false;
        }
        self.dirty += len as f64;
        *self.per_file.entry(file).or_insert(0.0) += len as f64;
        self.hits += 1;
        true
    }

    /// Wait for `file`'s dirty bytes to drain, starting at `t`. Returns the
    /// completion time (== `t` if the file has nothing dirty).
    ///
    /// Approximation: the whole bucket drains FIFO at `drain_bw`, so a
    /// single file's flush waits for its *share* of the backlog — we charge
    /// the full current backlog, which is exact when one file dominates a
    /// node's dirt (the checkpointing pattern).
    pub fn flush_file(&mut self, t: f64, file: u64) -> f64 {
        self.settle(t);
        let file_dirty = self.per_file.get(&file).copied().unwrap_or(0.0);
        if file_dirty <= 0.0 || self.drain_bw <= 0.0 {
            return t;
        }
        let wait = self.dirty / self.drain_bw;
        let done = t + wait;
        self.dirty = 0.0;
        self.per_file.clear();
        self.last_t = done;
        done
    }

    /// Current dirty bytes (after settling to `t`).
    pub fn dirty_at(&mut self, t: f64) -> f64 {
        self.settle(t);
        self.dirty
    }

    /// Absorbed write count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Write-through count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Is all of `[offset, offset+len)` of `file` clean-resident on this
    /// node? A hit bumps the file's recency; the caller completes the
    /// read at memory speed. A miss is what the caller sends to the
    /// servers (and should [`NodeCache::fill_read`] afterwards).
    pub fn absorb_read(&mut self, file: u64, offset: u64, len: u64) -> bool {
        if self.read_capacity == 0 || len == 0 {
            self.read_misses += 1;
            return false;
        }
        let end = offset + len;
        // Extents are merged, so full coverage means one extent spans the
        // whole range.
        let covered = self
            .read_extents
            .get(&file)
            .is_some_and(|ext| ext.iter().any(|&(s, e)| s <= offset && end <= e));
        if covered {
            self.touch_read(file);
            self.read_hits += 1;
        } else {
            self.read_misses += 1;
        }
        covered
    }

    /// Record that this node fetched `[offset, offset+len)` of `file`
    /// from the servers; evicts least-recently-touched files once the
    /// clean budget is exceeded (the file just filled is evicted only
    /// when it alone exceeds the budget).
    pub fn fill_read(&mut self, file: u64, offset: u64, len: u64) {
        if self.read_capacity == 0 || len == 0 {
            return;
        }
        let ext = self.read_extents.entry(file).or_default();
        let before = extent_bytes(ext);
        insert_extent(ext, offset, offset + len);
        self.read_resident += extent_bytes(ext) - before;
        self.touch_read(file);
        while self.read_resident > self.read_capacity && !self.read_lru.is_empty() {
            let victim = self.read_lru.remove(0);
            if let Some(gone) = self.read_extents.remove(&victim) {
                self.read_resident -= extent_bytes(&gone);
            }
        }
    }

    /// A write to `[offset, offset+len)` of `file` — by any node — makes
    /// this node's overlapping clean extents stale.
    pub fn invalidate_read(&mut self, file: u64, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let Some(ext) = self.read_extents.get_mut(&file) else {
            return;
        };
        let before = extent_bytes(ext);
        subtract_extent(ext, offset, offset + len);
        let after = extent_bytes(ext);
        self.read_resident -= before - after;
        if ext.is_empty() {
            self.read_extents.remove(&file);
            self.read_lru.retain(|&f| f != file);
        }
    }

    /// Reads absorbed clean (count).
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Reads that went to the servers (count).
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// Clean bytes currently resident.
    pub fn read_resident_bytes(&self) -> u64 {
        self.read_resident
    }

    fn touch_read(&mut self, file: u64) {
        if let Some(i) = self.read_lru.iter().position(|&f| f == file) {
            self.read_lru.remove(i);
        }
        self.read_lru.push(file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::units::MIB;

    fn cache() -> NodeCache {
        NodeCache::new(&CacheConfig {
            capacity: 64 * MIB,
            per_op_threshold: 4 * MIB,
            drain_bw: 1.0 * MIB as f64, // 1 MiB/s for easy arithmetic
            read_capacity: 0,
        })
    }

    #[test]
    fn small_writes_absorb_large_ones_do_not() {
        let mut c = cache();
        assert!(c.absorb(0.0, 1, MIB, true));
        assert!(!c.absorb(0.0, 1, 8 * MIB, true), "over per-op threshold");
        assert!(!c.absorb(0.0, 1, MIB, false), "caching disabled by locks");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn capacity_limits_absorption() {
        let mut c = cache();
        for _ in 0..16 {
            assert!(c.absorb(0.0, 1, 4 * MIB, true));
        }
        // 64 MiB dirty: full.
        assert!(!c.absorb(0.0, 1, 4 * MIB, true));
    }

    #[test]
    fn bucket_drains_over_time() {
        let mut c = cache();
        c.absorb(0.0, 1, 4 * MIB, true);
        assert!((c.dirty_at(1.0) - 3.0 * MIB as f64).abs() < 1.0);
        assert_eq!(c.dirty_at(10.0), 0.0);
        // Budget regenerated: can absorb again.
        assert!(c.absorb(10.0, 1, 4 * MIB, true));
    }

    #[test]
    fn flush_waits_for_backlog() {
        let mut c = cache();
        c.absorb(0.0, 7, 4 * MIB, true);
        let done = c.flush_file(0.0, 7);
        assert!((done - 4.0).abs() < 1e-9, "4 MiB at 1 MiB/s");
        assert_eq!(c.dirty_at(done), 0.0);
        // Flushing a clean file is free.
        assert_eq!(c.flush_file(done, 7), done);
        assert_eq!(c.flush_file(done, 99), done);
    }

    #[test]
    fn per_file_dirt_tracks_proportional_drain() {
        let mut c = cache();
        c.absorb(0.0, 1, 2 * MIB, true);
        c.absorb(0.0, 2, 2 * MIB, true);
        // After 2 s, 2 MiB drained: both files halved; flush of file 1
        // still waits for the whole remaining bucket (2 MiB -> 2 s).
        let done = c.flush_file(2.0, 1);
        assert!((done - 4.0).abs() < 1e-9);
    }

    fn read_cache(read_capacity: u64) -> NodeCache {
        NodeCache::new(&CacheConfig {
            capacity: 0,
            per_op_threshold: 0,
            drain_bw: 1.0,
            read_capacity,
        })
    }

    #[test]
    fn reread_of_filled_range_is_absorbed() {
        let mut c = read_cache(64 * MIB);
        assert!(!c.absorb_read(1, 0, MIB), "cold read pays the servers");
        c.fill_read(1, 0, MIB);
        assert!(c.absorb_read(1, 0, MIB), "full re-read absorbed");
        assert!(c.absorb_read(1, 4096, 8192), "sub-range absorbed");
        assert!(!c.absorb_read(1, MIB - 4096, 8192), "straddles the edge");
        assert!(!c.absorb_read(2, 0, 4096), "other files unaffected");
        assert_eq!((c.read_hits(), c.read_misses()), (2, 3));
        assert_eq!(c.read_resident_bytes(), MIB);
    }

    #[test]
    fn adjacent_fills_merge_into_one_extent() {
        let mut c = read_cache(64 * MIB);
        c.fill_read(1, 0, 4096);
        c.fill_read(1, 8192, 4096);
        assert!(!c.absorb_read(1, 0, 12288), "hole at [4096, 8192)");
        c.fill_read(1, 4096, 4096);
        assert!(c.absorb_read(1, 0, 12288), "extents merged across fills");
        assert_eq!(c.read_resident_bytes(), 12288);
    }

    #[test]
    fn read_budget_evicts_least_recent_file() {
        let mut c = read_cache(2 * MIB);
        c.fill_read(1, 0, MIB);
        c.fill_read(2, 0, MIB);
        // Touch file 1 so file 2 is the LRU victim when 3 arrives.
        assert!(c.absorb_read(1, 0, MIB));
        c.fill_read(3, 0, MIB);
        assert!(c.absorb_read(1, 0, MIB), "recently touched survives");
        assert!(!c.absorb_read(2, 0, MIB), "oldest file evicted");
        assert!(c.absorb_read(3, 0, MIB));
        assert_eq!(c.read_resident_bytes(), 2 * MIB);
    }

    #[test]
    fn invalidation_punches_holes() {
        let mut c = read_cache(64 * MIB);
        c.fill_read(1, 0, MIB);
        c.invalidate_read(1, 4096, 4096);
        assert!(c.absorb_read(1, 0, 4096), "prefix still clean");
        assert!(!c.absorb_read(1, 4096, 4096), "written range stale");
        assert!(c.absorb_read(1, 8192, MIB - 8192), "suffix still clean");
        assert_eq!(c.read_resident_bytes(), MIB - 4096);
        // Invalidating the rest drops the file entirely.
        c.invalidate_read(1, 0, MIB);
        assert_eq!(c.read_resident_bytes(), 0);
        assert!(!c.absorb_read(1, 0, 1));
    }

    #[test]
    fn zero_read_capacity_disables_read_cache() {
        let mut c = read_cache(0);
        c.fill_read(1, 0, MIB);
        assert!(!c.absorb_read(1, 0, MIB));
        assert_eq!(c.read_resident_bytes(), 0);
        assert_eq!(c.read_hits(), 0);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = NodeCache::new(&CacheConfig {
            capacity: 0,
            per_op_threshold: 4 * MIB,
            drain_bw: 1e6,
            read_capacity: 0,
        });
        assert!(!c.absorb(0.0, 1, 1024, true));
    }
}
