//! Configuration of the simulated platform: cluster and file system.
//!
//! The knobs here correspond to Table I of the paper plus the handful of
//! behavioural parameters the shapes in Figs 3–5 depend on (client
//! write-back cache, lock semantics, metadata service). Calibrated values
//! for the two testbeds live in [`crate::presets`].

use jsonlite::{ParseError, Value};

/// Byte-size helpers.
pub mod units {
    /// Kibibyte.
    pub const KIB: u64 = 1 << 10;
    /// Mebibyte.
    pub const MIB: u64 = 1 << 20;
    /// Gibibyte.
    pub const GIB: u64 = 1 << 30;
}

/// The compute side: nodes, cores and links.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Processor cores per node.
    pub cores_per_node: usize,
    /// Per-node network link bandwidth to the I/O fabric (bytes/s).
    pub link_bw: f64,
    /// Memory copy bandwidth (bytes/s) — cost of cache-absorbed writes.
    pub mem_bw: f64,
    /// Fixed per-POSIX-call client-side software overhead (s).
    pub syscall_overhead: f64,
}

/// Metadata service shape.
#[derive(Debug, Clone)]
pub enum MdsConfig {
    /// Lustre-style dedicated metadata server: one service queue; service
    /// time degrades when the queue is backlogged (directory lock thrash
    /// under create storms).
    Dedicated {
        /// Base service time per metadata op (s).
        base_op: f64,
        /// Service-time inflation per queued request at arrival
        /// (`service = base * (1 + alpha * backlog_depth)`).
        contention_alpha: f64,
        /// Cap on the inflation depth (requests).
        contention_cap: f64,
    },
    /// GPFS-style distributed metadata: ops spread over the storage
    /// servers, constant service time.
    Distributed {
        /// Base service time per metadata op (s).
        base_op: f64,
        /// Number of metadata-serving nodes.
        servers: usize,
    },
}

/// How the file system behaves when several clients write one file.
#[derive(Debug, Clone)]
pub struct LockConfig {
    /// Latency to acquire an extent/byte-range lock when the file has other
    /// writers (s). Charged per write op.
    pub acquire_latency: f64,
    /// Fraction of the transfer that proceeds *under* the lock
    /// (0 = locks only serialize acquisition, 1 = fully serialized writes).
    pub hold_transfer_fraction: f64,
    /// Whether lock revocation disables client write-back caching on files
    /// with multiple writers (true for Lustre extent locks).
    pub revoke_cache_on_shared: bool,
}

/// Client write-back cache model.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Per-node dirty-data capacity (bytes). 0 disables caching.
    pub capacity: u64,
    /// Largest single write the cache will absorb (bytes); larger writes go
    /// write-through (Lustre's per-RPC dirty limit).
    pub per_op_threshold: u64,
    /// Background drain rate to the servers (bytes/s).
    pub drain_bw: f64,
    /// Per-node *clean* read-cache capacity (bytes). 0 disables read
    /// caching: every read pays the device. When set, a re-read of bytes
    /// this node already fetched completes at memory bandwidth instead —
    /// the cache-aware read cost term the `readcache` figure models at
    /// the PLFS layer.
    pub read_capacity: u64,
}

/// The storage side.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Human-readable name (e.g. "lscratchc (Lustre)").
    pub name: String,
    /// Number of I/O servers (GPFS NSD servers / Lustre OSSes).
    pub servers: usize,
    /// Independent service lanes per server (RAID arrays / OSTs).
    pub lanes_per_server: usize,
    /// Streaming bandwidth per lane (bytes/s), for reads.
    pub lane_bw: f64,
    /// Write bandwidth as a fraction of `lane_bw` (RAID-6 parity penalty;
    /// 1.0 = symmetric).
    pub write_bw_scale: f64,
    /// Fixed per-request server latency: seek + RPC (s).
    pub per_op_latency: f64,
    /// Per-additional-opener inflation of read latency on shared files
    /// (disk-head interference between interleaved streams); the total
    /// inflation factor is capped at 6.
    pub read_interference: f64,
    /// Stripe size for data placement (bytes).
    pub stripe_size: u64,
    /// Default stripe width (how many servers a file stripes over).
    pub stripe_width: usize,
    /// Metadata service.
    pub mds: MdsConfig,
    /// Locking behaviour.
    pub lock: LockConfig,
    /// Client cache behaviour.
    pub cache: CacheConfig,
}

/// A complete simulated platform.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Compute cluster.
    pub cluster: ClusterConfig,
    /// Attached file system.
    pub fs: FsConfig,
}

impl Platform {
    /// Aggregate theoretical storage bandwidth (bytes/s).
    pub fn peak_storage_bw(&self) -> f64 {
        self.fs.servers as f64 * self.fs.lanes_per_server as f64 * self.fs.lane_bw
    }

    /// Total cores available.
    pub fn total_cores(&self) -> usize {
        self.cluster.nodes * self.cluster.cores_per_node
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization. Hand-written against `jsonlite` so platform configs
// can be dumped/loaded without external dependencies; the layout mirrors the
// struct fields one-to-one and MdsConfig uses externally-tagged variants
// (`{"dedicated": {...}}` / `{"distributed": {...}}`).

fn field(v: &Value, key: &str) -> Result<Value, ParseError> {
    v.get(key).cloned().ok_or_else(|| ParseError {
        message: format!("missing field `{key}`"),
        at: 0,
    })
}

fn get_f64(v: &Value, key: &str) -> Result<f64, ParseError> {
    field(v, key)?.as_f64().ok_or_else(|| ParseError {
        message: format!("field `{key}` is not a number"),
        at: 0,
    })
}

fn get_u64(v: &Value, key: &str) -> Result<u64, ParseError> {
    field(v, key)?.as_u64().ok_or_else(|| ParseError {
        message: format!("field `{key}` is not an unsigned integer"),
        at: 0,
    })
}

fn get_usize(v: &Value, key: &str) -> Result<usize, ParseError> {
    Ok(get_u64(v, key)? as usize)
}

fn get_bool(v: &Value, key: &str) -> Result<bool, ParseError> {
    field(v, key)?.as_bool().ok_or_else(|| ParseError {
        message: format!("field `{key}` is not a bool"),
        at: 0,
    })
}

impl ClusterConfig {
    /// JSON representation.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("nodes", self.nodes as u64)
            .with("cores_per_node", self.cores_per_node as u64)
            .with("link_bw", self.link_bw)
            .with("mem_bw", self.mem_bw)
            .with("syscall_overhead", self.syscall_overhead)
    }

    /// Parse from a JSON object.
    pub fn from_json(v: &Value) -> Result<ClusterConfig, ParseError> {
        Ok(ClusterConfig {
            nodes: get_usize(v, "nodes")?,
            cores_per_node: get_usize(v, "cores_per_node")?,
            link_bw: get_f64(v, "link_bw")?,
            mem_bw: get_f64(v, "mem_bw")?,
            syscall_overhead: get_f64(v, "syscall_overhead")?,
        })
    }
}

impl MdsConfig {
    /// JSON representation (externally tagged).
    pub fn to_json(&self) -> Value {
        match self {
            MdsConfig::Dedicated {
                base_op,
                contention_alpha,
                contention_cap,
            } => Value::object().with(
                "dedicated",
                Value::object()
                    .with("base_op", *base_op)
                    .with("contention_alpha", *contention_alpha)
                    .with("contention_cap", *contention_cap),
            ),
            MdsConfig::Distributed { base_op, servers } => Value::object().with(
                "distributed",
                Value::object()
                    .with("base_op", *base_op)
                    .with("servers", *servers as u64),
            ),
        }
    }

    /// Parse from a JSON object.
    pub fn from_json(v: &Value) -> Result<MdsConfig, ParseError> {
        if let Some(d) = v.get("dedicated") {
            Ok(MdsConfig::Dedicated {
                base_op: get_f64(d, "base_op")?,
                contention_alpha: get_f64(d, "contention_alpha")?,
                contention_cap: get_f64(d, "contention_cap")?,
            })
        } else if let Some(d) = v.get("distributed") {
            Ok(MdsConfig::Distributed {
                base_op: get_f64(d, "base_op")?,
                servers: get_usize(d, "servers")?,
            })
        } else {
            Err(ParseError {
                message: "mds: expected `dedicated` or `distributed` variant".into(),
                at: 0,
            })
        }
    }
}

impl LockConfig {
    /// JSON representation.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("acquire_latency", self.acquire_latency)
            .with("hold_transfer_fraction", self.hold_transfer_fraction)
            .with("revoke_cache_on_shared", self.revoke_cache_on_shared)
    }

    /// Parse from a JSON object.
    pub fn from_json(v: &Value) -> Result<LockConfig, ParseError> {
        Ok(LockConfig {
            acquire_latency: get_f64(v, "acquire_latency")?,
            hold_transfer_fraction: get_f64(v, "hold_transfer_fraction")?,
            revoke_cache_on_shared: get_bool(v, "revoke_cache_on_shared")?,
        })
    }
}

impl CacheConfig {
    /// JSON representation.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("capacity", self.capacity)
            .with("per_op_threshold", self.per_op_threshold)
            .with("drain_bw", self.drain_bw)
            .with("read_capacity", self.read_capacity)
    }

    /// Parse from a JSON object. `read_capacity` is optional (defaults to
    /// 0 = no read caching) so platform files written before the field
    /// existed keep loading; the write-cache fields stay mandatory.
    pub fn from_json(v: &Value) -> Result<CacheConfig, ParseError> {
        Ok(CacheConfig {
            capacity: get_u64(v, "capacity")?,
            per_op_threshold: get_u64(v, "per_op_threshold")?,
            drain_bw: get_f64(v, "drain_bw")?,
            read_capacity: if v.get("read_capacity").is_some() {
                get_u64(v, "read_capacity")?
            } else {
                0
            },
        })
    }
}

impl FsConfig {
    /// JSON representation.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("name", self.name.as_str())
            .with("servers", self.servers as u64)
            .with("lanes_per_server", self.lanes_per_server as u64)
            .with("lane_bw", self.lane_bw)
            .with("write_bw_scale", self.write_bw_scale)
            .with("per_op_latency", self.per_op_latency)
            .with("read_interference", self.read_interference)
            .with("stripe_size", self.stripe_size)
            .with("stripe_width", self.stripe_width as u64)
            .with("mds", self.mds.to_json())
            .with("lock", self.lock.to_json())
            .with("cache", self.cache.to_json())
    }

    /// Parse from a JSON object.
    pub fn from_json(v: &Value) -> Result<FsConfig, ParseError> {
        let name = field(v, "name")?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ParseError {
                message: "field `name` is not a string".into(),
                at: 0,
            })?;
        Ok(FsConfig {
            name,
            servers: get_usize(v, "servers")?,
            lanes_per_server: get_usize(v, "lanes_per_server")?,
            lane_bw: get_f64(v, "lane_bw")?,
            write_bw_scale: get_f64(v, "write_bw_scale")?,
            per_op_latency: get_f64(v, "per_op_latency")?,
            read_interference: get_f64(v, "read_interference")?,
            stripe_size: get_u64(v, "stripe_size")?,
            stripe_width: get_usize(v, "stripe_width")?,
            mds: MdsConfig::from_json(&field(v, "mds")?)?,
            lock: LockConfig::from_json(&field(v, "lock")?)?,
            cache: CacheConfig::from_json(&field(v, "cache")?)?,
        })
    }
}

impl Platform {
    /// JSON representation of the whole platform.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("cluster", self.cluster.to_json())
            .with("fs", self.fs.to_json())
    }

    /// Parse a platform from a JSON object.
    pub fn from_json(v: &Value) -> Result<Platform, ParseError> {
        Ok(Platform {
            cluster: ClusterConfig::from_json(&field(v, "cluster")?)?,
            fs: FsConfig::from_json(&field(v, "fs")?)?,
        })
    }

    /// Parse a platform from JSON text.
    pub fn from_json_str(s: &str) -> Result<Platform, ParseError> {
        Platform::from_json(&jsonlite::parse(s)?)
    }
}

impl jsonlite::ToJson for Platform {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn peak_bandwidth_is_product_of_parts() {
        let p = Platform {
            cluster: ClusterConfig {
                nodes: 4,
                cores_per_node: 12,
                link_bw: 1e9,
                mem_bw: 4e9,
                syscall_overhead: 1e-6,
            },
            fs: FsConfig {
                name: "toy".into(),
                servers: 2,
                lanes_per_server: 3,
                lane_bw: 100e6,
                write_bw_scale: 1.0,
                per_op_latency: 1e-3,
                read_interference: 0.0,
                stripe_size: units::MIB,
                stripe_width: 2,
                mds: MdsConfig::Distributed {
                    base_op: 1e-3,
                    servers: 2,
                },
                lock: LockConfig {
                    acquire_latency: 1e-4,
                    hold_transfer_fraction: 0.0,
                    revoke_cache_on_shared: false,
                },
                cache: CacheConfig {
                    capacity: units::GIB,
                    per_op_threshold: 4 * units::MIB,
                    drain_bw: 100e6,
                    read_capacity: 0,
                },
            },
        };
        assert!((p.peak_storage_bw() - 600e6).abs() < 1.0);
        assert_eq!(p.total_cores(), 48);
    }

    #[test]
    fn platform_serializes_roundtrip() {
        let p = presets::minerva();
        let json = p.to_json().to_json();
        let back = Platform::from_json_str(&json).unwrap();
        assert_eq!(back.fs.servers, p.fs.servers);
        assert_eq!(back.cluster.nodes, p.cluster.nodes);
        // Floats and the mds variant must survive too.
        assert!((back.fs.lane_bw - p.fs.lane_bw).abs() < 1e-6);
        assert_eq!(
            matches!(back.fs.mds, MdsConfig::Dedicated { .. }),
            matches!(p.fs.mds, MdsConfig::Dedicated { .. })
        );
    }

    #[test]
    fn platform_from_json_reports_missing_fields() {
        let err = Platform::from_json_str("{\"cluster\": {}}").unwrap_err();
        assert!(err.message.contains("missing field"));
    }

    #[test]
    fn read_capacity_is_optional_in_json() {
        // Round trip keeps an explicit value.
        let mut p = presets::minerva();
        p.fs.cache.read_capacity = 64 * units::MIB;
        let back = Platform::from_json_str(&p.to_json().to_json()).unwrap();
        assert_eq!(back.fs.cache.read_capacity, 64 * units::MIB);
        // A cache object written before the field existed still parses,
        // with read caching off...
        let legacy =
            jsonlite::parse("{\"capacity\": 1024, \"per_op_threshold\": 64, \"drain_bw\": 1.5}")
                .unwrap();
        assert_eq!(CacheConfig::from_json(&legacy).unwrap().read_capacity, 0);
        // ...while the write-cache fields stay mandatory.
        let broken = jsonlite::parse("{\"per_op_threshold\": 64, \"drain_bw\": 1.5}").unwrap();
        assert!(CacheConfig::from_json(&broken).is_err());
    }
}
