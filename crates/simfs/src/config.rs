//! Configuration of the simulated platform: cluster and file system.
//!
//! The knobs here correspond to Table I of the paper plus the handful of
//! behavioural parameters the shapes in Figs 3–5 depend on (client
//! write-back cache, lock semantics, metadata service). Calibrated values
//! for the two testbeds live in [`crate::presets`].

use serde::{Deserialize, Serialize};

/// Byte-size helpers.
pub mod units {
    /// Kibibyte.
    pub const KIB: u64 = 1 << 10;
    /// Mebibyte.
    pub const MIB: u64 = 1 << 20;
    /// Gibibyte.
    pub const GIB: u64 = 1 << 30;
}

/// The compute side: nodes, cores and links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Processor cores per node.
    pub cores_per_node: usize,
    /// Per-node network link bandwidth to the I/O fabric (bytes/s).
    pub link_bw: f64,
    /// Memory copy bandwidth (bytes/s) — cost of cache-absorbed writes.
    pub mem_bw: f64,
    /// Fixed per-POSIX-call client-side software overhead (s).
    pub syscall_overhead: f64,
}

/// Metadata service shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MdsConfig {
    /// Lustre-style dedicated metadata server: one service queue; service
    /// time degrades when the queue is backlogged (directory lock thrash
    /// under create storms).
    Dedicated {
        /// Base service time per metadata op (s).
        base_op: f64,
        /// Service-time inflation per queued request at arrival
        /// (`service = base * (1 + alpha * backlog_depth)`).
        contention_alpha: f64,
        /// Cap on the inflation depth (requests).
        contention_cap: f64,
    },
    /// GPFS-style distributed metadata: ops spread over the storage
    /// servers, constant service time.
    Distributed {
        /// Base service time per metadata op (s).
        base_op: f64,
        /// Number of metadata-serving nodes.
        servers: usize,
    },
}

/// How the file system behaves when several clients write one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockConfig {
    /// Latency to acquire an extent/byte-range lock when the file has other
    /// writers (s). Charged per write op.
    pub acquire_latency: f64,
    /// Fraction of the transfer that proceeds *under* the lock
    /// (0 = locks only serialize acquisition, 1 = fully serialized writes).
    pub hold_transfer_fraction: f64,
    /// Whether lock revocation disables client write-back caching on files
    /// with multiple writers (true for Lustre extent locks).
    pub revoke_cache_on_shared: bool,
}

/// Client write-back cache model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Per-node dirty-data capacity (bytes). 0 disables caching.
    pub capacity: u64,
    /// Largest single write the cache will absorb (bytes); larger writes go
    /// write-through (Lustre's per-RPC dirty limit).
    pub per_op_threshold: u64,
    /// Background drain rate to the servers (bytes/s).
    pub drain_bw: f64,
}

/// The storage side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsConfig {
    /// Human-readable name (e.g. "lscratchc (Lustre)").
    pub name: String,
    /// Number of I/O servers (GPFS NSD servers / Lustre OSSes).
    pub servers: usize,
    /// Independent service lanes per server (RAID arrays / OSTs).
    pub lanes_per_server: usize,
    /// Streaming bandwidth per lane (bytes/s), for reads.
    pub lane_bw: f64,
    /// Write bandwidth as a fraction of `lane_bw` (RAID-6 parity penalty;
    /// 1.0 = symmetric).
    pub write_bw_scale: f64,
    /// Fixed per-request server latency: seek + RPC (s).
    pub per_op_latency: f64,
    /// Per-additional-opener inflation of read latency on shared files
    /// (disk-head interference between interleaved streams); the total
    /// inflation factor is capped at 6.
    pub read_interference: f64,
    /// Stripe size for data placement (bytes).
    pub stripe_size: u64,
    /// Default stripe width (how many servers a file stripes over).
    pub stripe_width: usize,
    /// Metadata service.
    pub mds: MdsConfig,
    /// Locking behaviour.
    pub lock: LockConfig,
    /// Client cache behaviour.
    pub cache: CacheConfig,
}

/// A complete simulated platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Compute cluster.
    pub cluster: ClusterConfig,
    /// Attached file system.
    pub fs: FsConfig,
}

impl Platform {
    /// Aggregate theoretical storage bandwidth (bytes/s).
    pub fn peak_storage_bw(&self) -> f64 {
        self.fs.servers as f64 * self.fs.lanes_per_server as f64 * self.fs.lane_bw
    }

    /// Total cores available.
    pub fn total_cores(&self) -> usize {
        self.cluster.nodes * self.cluster.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn peak_bandwidth_is_product_of_parts() {
        let p = Platform {
            cluster: ClusterConfig {
                nodes: 4,
                cores_per_node: 12,
                link_bw: 1e9,
                mem_bw: 4e9,
                syscall_overhead: 1e-6,
            },
            fs: FsConfig {
                name: "toy".into(),
                servers: 2,
                lanes_per_server: 3,
                lane_bw: 100e6,
                write_bw_scale: 1.0,
                per_op_latency: 1e-3,
                read_interference: 0.0,
                stripe_size: units::MIB,
                stripe_width: 2,
                mds: MdsConfig::Distributed {
                    base_op: 1e-3,
                    servers: 2,
                },
                lock: LockConfig {
                    acquire_latency: 1e-4,
                    hold_transfer_fraction: 0.0,
                    revoke_cache_on_shared: false,
                },
                cache: CacheConfig {
                    capacity: units::GIB,
                    per_op_threshold: 4 * units::MIB,
                    drain_bw: 100e6,
                },
            },
        };
        assert!((p.peak_storage_bw() - 600e6).abs() < 1.0);
        assert_eq!(p.total_cores(), 48);
    }

    #[test]
    fn platform_serializes_roundtrip() {
        let p = presets::minerva();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fs.servers, p.fs.servers);
        assert_eq!(back.cluster.nodes, p.cluster.nodes);
    }
}
