//! FIFO resource queues — the building block of the timing model.
//!
//! Every contended resource (a disk lane, an I/O server, the MDS CPU, a
//! client's network link) is a queue: a request arriving at `t` with service
//! time `s` completes at `max(t, next_free) + s`. Requests must be issued in
//! non-decreasing arrival order per simulation (the engine guarantees this);
//! a late-issued earlier arrival simply queues behind, a documented
//! approximation.

/// A single-server FIFO queue.
#[derive(Debug, Clone, Default)]
pub struct SingleQueue {
    next_free: f64,
    busy: f64,
    served: u64,
}

impl SingleQueue {
    /// New, idle queue.
    pub fn new() -> SingleQueue {
        SingleQueue::default()
    }

    /// Serve a request arriving at `arrival` needing `service` seconds.
    /// Returns the completion time.
    pub fn serve(&mut self, arrival: f64, service: f64) -> f64 {
        let start = arrival.max(self.next_free);
        self.next_free = start + service;
        self.busy += service;
        self.served += 1;
        self.next_free
    }

    /// When the queue next becomes idle.
    pub fn next_free(&self) -> f64 {
        self.next_free
    }

    /// Backlog (seconds of queued work) seen by an arrival at `t`.
    pub fn backlog(&self, t: f64) -> f64 {
        (self.next_free - t).max(0.0)
    }

    /// Total busy seconds served.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A k-server FIFO queue (e.g. a RAID array's independent lanes, or a
/// server pool): each request takes the earliest-free lane.
#[derive(Debug, Clone)]
pub struct MultiQueue {
    lanes: Vec<f64>,
    busy: f64,
    served: u64,
}

impl MultiQueue {
    /// A queue with `lanes` parallel servers.
    pub fn new(lanes: usize) -> MultiQueue {
        MultiQueue {
            lanes: vec![0.0; lanes.max(1)],
            busy: 0.0,
            served: 0,
        }
    }

    /// Serve on the earliest-free lane; returns completion time.
    pub fn serve(&mut self, arrival: f64, service: f64) -> f64 {
        // Linear scan: lane counts are small (disks per server, servers).
        let (idx, _) = self
            .lanes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let start = arrival.max(self.lanes[idx]);
        self.lanes[idx] = start + service;
        self.busy += service;
        self.served += 1;
        self.lanes[idx]
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Earliest time any lane is free.
    pub fn earliest_free(&self) -> f64 {
        self.lanes.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Total busy seconds across lanes.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_queue_serializes() {
        let mut q = SingleQueue::new();
        assert_eq!(q.serve(0.0, 1.0), 1.0);
        assert_eq!(q.serve(0.0, 1.0), 2.0, "second request queues");
        assert_eq!(q.serve(5.0, 1.0), 6.0, "idle gap not charged");
        assert_eq!(q.served(), 3);
        assert!((q.busy_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_queue_backlog() {
        let mut q = SingleQueue::new();
        q.serve(0.0, 2.0);
        assert!((q.backlog(0.5) - 1.5).abs() < 1e-12);
        assert_eq!(q.backlog(10.0), 0.0);
    }

    #[test]
    fn multi_queue_parallelism() {
        let mut q = MultiQueue::new(2);
        assert_eq!(q.serve(0.0, 1.0), 1.0);
        assert_eq!(q.serve(0.0, 1.0), 1.0, "second lane");
        assert_eq!(q.serve(0.0, 1.0), 2.0, "third request waits");
        assert_eq!(q.lanes(), 2);
    }

    #[test]
    fn multi_queue_picks_earliest_lane() {
        let mut q = MultiQueue::new(2);
        q.serve(0.0, 5.0); // lane 0 busy until 5
        q.serve(0.0, 1.0); // lane 1 busy until 1
        assert_eq!(q.serve(1.0, 1.0), 2.0, "goes to lane 1");
        assert_eq!(q.earliest_free(), 2.0);
    }

    #[test]
    fn zero_lane_queue_clamps_to_one() {
        let mut q = MultiQueue::new(0);
        assert_eq!(q.lanes(), 1);
        assert_eq!(q.serve(0.0, 1.0), 1.0);
    }
}
