//! The simulated parallel file system.
//!
//! [`SimFs`] combines a namespace (directories, files, stripe placement)
//! with the timing model (server queues, client links, write cache, locks,
//! metadata service). Every operation takes an *arrival time* and returns a
//! *completion time*; callers (the MPI-IO layer, the serial-tool models)
//! thread these through their own notion of per-rank clocks.
//!
//! Operations must be issued in globally non-decreasing arrival order for
//! exact FIFO queueing; modest inversions degrade gracefully (the request
//! queues behind already-issued work).

use crate::cache::NodeCache;
use crate::config::Platform;
use crate::locks::FileLock;
use crate::mds::{dir_hash, MetaOp, MetadataService};
use crate::queue::MultiQueue;
use crate::queue::SingleQueue;
use crate::trace::{Trace, TraceKind, TraceRecord};
use std::collections::HashMap;

/// Handle to a simulated file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub usize);

/// Namespace-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Path (or parent) missing.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// Bad handle.
    BadFile,
    /// Node index out of range.
    BadNode,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotFound(p) => write!(f, "not found: {p}"),
            SimError::Exists(p) => write!(f, "exists: {p}"),
            SimError::BadFile => write!(f, "bad file handle"),
            SimError::BadNode => write!(f, "bad node index"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias.
pub type SimResult<T> = Result<T, SimError>;

struct FileState {
    /// Kept for diagnostics and future trace output.
    #[allow(dead_code)]
    path: String,
    size: u64,
    stripe_start: usize,
    stripe_width: usize,
    writers: usize,
    /// Nodes that have actually written — lock contention is between
    /// active writers, not mere openers (one aggregator per node writing
    /// means ppn does not change the contention, as the paper observes).
    writing_nodes: std::collections::HashSet<usize>,
    /// Nodes that have actually read (disk-head interference).
    reading_nodes: std::collections::HashSet<usize>,
    /// Extent locks live on the server owning the stripe (per-OST lock
    /// domains): writes to stripes on different servers do not conflict.
    server_locks: HashMap<usize, FileLock>,
    alive: bool,
}

/// Aggregate counters, readable at any point.
#[derive(Debug, Clone, Default)]
pub struct FsStats {
    /// Bytes accepted by write ops.
    pub bytes_written: u64,
    /// Bytes returned by read ops.
    pub bytes_read: u64,
    /// Write calls.
    pub write_ops: u64,
    /// Read calls.
    pub read_ops: u64,
    /// Writes absorbed by client caches.
    pub cache_hits: u64,
    /// Writes that went write-through.
    pub cache_misses: u64,
    /// Reads absorbed by a node's clean read cache (memory speed).
    pub read_cache_hits: u64,
    /// Reads that went to the servers.
    pub read_cache_misses: u64,
    /// Bytes served from clean read caches (device bytes read are
    /// `bytes_read - bytes_read_cached`).
    pub bytes_read_cached: u64,
    /// Contended lock acquisitions.
    pub lock_conflicts: u64,
    /// Metadata operations served.
    pub meta_ops: u64,
    /// Seconds the metadata service was busy.
    pub mds_busy: f64,
    /// Latest completion time returned by any op.
    pub makespan: f64,
}

/// The simulated file system (one [`Platform`] instance).
pub struct SimFs {
    platform: Platform,
    servers: Vec<MultiQueue>,
    node_links: Vec<SingleQueue>,
    node_caches: Vec<NodeCache>,
    mds: MetadataService,
    dirs: std::collections::HashSet<String>,
    by_path: HashMap<String, usize>,
    files: Vec<FileState>,
    stats: FsStats,
    trace: Trace,
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

impl SimFs {
    /// Build an empty file system on a platform.
    pub fn new(platform: Platform) -> SimFs {
        let servers = (0..platform.fs.servers)
            .map(|_| MultiQueue::new(platform.fs.lanes_per_server))
            .collect();
        let node_links = (0..platform.cluster.nodes)
            .map(|_| SingleQueue::new())
            .collect();
        let node_caches = (0..platform.cluster.nodes)
            .map(|_| NodeCache::new(&platform.fs.cache))
            .collect();
        let mds = MetadataService::new(&platform.fs.mds);
        let mut dirs = std::collections::HashSet::new();
        dirs.insert("/".to_string());
        SimFs {
            platform,
            servers,
            node_links,
            node_caches,
            mds,
            dirs,
            by_path: HashMap::new(),
            files: Vec::new(),
            stats: FsStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// Turn on operation tracing (records every data/metadata op).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The platform this FS simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Counter snapshot (MDS numbers refreshed).
    pub fn stats(&self) -> FsStats {
        let mut s = self.stats.clone();
        s.meta_ops = self.mds.ops_served();
        s.mds_busy = self.mds.busy_time();
        s
    }

    fn note(&mut self, completion: f64) -> f64 {
        if completion > self.stats.makespan {
            self.stats.makespan = completion;
        }
        completion
    }

    fn meta(&mut self, t: f64, op: MetaOp, dir: &str) -> f64 {
        let c = self.mds.op(t, op, dir_hash(dir));
        self.trace.record(TraceRecord {
            kind: TraceKind::Meta,
            node: usize::MAX,
            file: usize::MAX,
            offset: 0,
            len: 0,
            start: t,
            end: c,
            cached: false,
        });
        self.note(c)
    }

    fn state(&self, fid: FileId) -> SimResult<&FileState> {
        self.files
            .get(fid.0)
            .filter(|f| f.alive)
            .ok_or(SimError::BadFile)
    }

    // ----- namespace operations ------------------------------------------

    /// Create a directory. Charges one MDS create.
    pub fn mkdir(&mut self, t: f64, path: &str) -> SimResult<f64> {
        let parent = parent_of(path);
        if !self.dirs.contains(&parent) {
            return Err(SimError::NotFound(parent));
        }
        if self.dirs.contains(path) || self.by_path.contains_key(path) {
            return Err(SimError::Exists(path.to_string()));
        }
        self.dirs.insert(path.to_string());
        Ok(self.meta(t, MetaOp::Create, &parent))
    }

    /// Does a path exist (file or directory)?
    pub fn exists(&self, path: &str) -> bool {
        self.dirs.contains(path) || self.by_path.contains_key(path)
    }

    /// Create a file, optionally overriding the stripe width (PLFS
    /// droppings use width 1, round-robined over servers). Charges one MDS
    /// create against the parent directory — the contention key that makes
    /// hostdir spreading matter. Returns `(completion, id)`.
    pub fn create(
        &mut self,
        t: f64,
        path: &str,
        stripe_width: Option<usize>,
    ) -> SimResult<(f64, FileId)> {
        let parent = parent_of(path);
        if !self.dirs.contains(&parent) {
            return Err(SimError::NotFound(parent));
        }
        if self.by_path.contains_key(path) || self.dirs.contains(path) {
            return Err(SimError::Exists(path.to_string()));
        }
        let width = stripe_width
            .unwrap_or(self.platform.fs.stripe_width)
            .clamp(1, self.platform.fs.servers.max(1));
        let id = self.files.len();
        // Placement by path hash (Lustre-style pseudo-random OST pick):
        // avoids pathological alternation when files are created in pairs
        // (data + index droppings).
        let start = (crate::mds::dir_hash(path) % self.platform.fs.servers.max(1) as u64) as usize;
        self.files.push(FileState {
            path: path.to_string(),
            size: 0,
            stripe_start: start,
            stripe_width: width,
            writers: 0,
            writing_nodes: std::collections::HashSet::new(),
            reading_nodes: std::collections::HashSet::new(),
            server_locks: HashMap::new(),
            alive: true,
        });
        self.by_path.insert(path.to_string(), id);
        let c = self.meta(t, MetaOp::Create, &parent);
        Ok((c, FileId(id)))
    }

    /// Open an existing file. `write` registers a writer (used for lock
    /// contention and cache-revocation decisions). Charges one MDS open.
    pub fn open(&mut self, t: f64, path: &str, write: bool) -> SimResult<(f64, FileId)> {
        let id = *self
            .by_path
            .get(path)
            .ok_or_else(|| SimError::NotFound(path.to_string()))?;
        let parent = parent_of(path);
        if write {
            self.files[id].writers += 1;
        }
        let c = self.meta(t, MetaOp::Open, &parent);
        Ok((c, FileId(id)))
    }

    /// Register an additional writer on an already-open file (an MPI rank
    /// joining a shared handle); free of metadata cost.
    pub fn add_writer(&mut self, fid: FileId) -> SimResult<()> {
        self.state(fid)?;
        self.files[fid.0].writers += 1;
        Ok(())
    }

    /// Close a handle. With `write`, the writer count drops and, if
    /// `flush`, the node's dirty bytes for the file drain first.
    pub fn close(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        write: bool,
        flush: bool,
    ) -> SimResult<f64> {
        self.state(fid)?;
        let mut done = t;
        if flush {
            let cache = self.node_caches.get_mut(node).ok_or(SimError::BadNode)?;
            done = cache.flush_file(t, fid.0 as u64);
        }
        if write {
            let f = &mut self.files[fid.0];
            f.writers = f.writers.saturating_sub(1);
        }
        Ok(self.note(done))
    }

    /// Stat: one MDS op.
    pub fn stat(&mut self, t: f64, path: &str) -> SimResult<(f64, u64)> {
        let size = match self.by_path.get(path) {
            Some(&id) => self.files[id].size,
            None if self.dirs.contains(path) => 0,
            None => return Err(SimError::NotFound(path.to_string())),
        };
        let c = self.meta(t, MetaOp::Stat, &parent_of(path));
        Ok((c, size))
    }

    /// Unlink a file: one MDS remove.
    pub fn unlink(&mut self, t: f64, path: &str) -> SimResult<f64> {
        let id = self
            .by_path
            .remove(path)
            .ok_or_else(|| SimError::NotFound(path.to_string()))?;
        self.files[id].alive = false;
        Ok(self.meta(t, MetaOp::Remove, &parent_of(path)))
    }

    /// List a directory: one MDS readdir; returns entry names.
    pub fn readdir(&mut self, t: f64, path: &str) -> SimResult<(f64, Vec<String>)> {
        if !self.dirs.contains(path) {
            return Err(SimError::NotFound(path.to_string()));
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut names: Vec<String> = self
            .by_path
            .keys()
            .map(|s| s.as_str())
            .chain(self.dirs.iter().map(|s| s.as_str()))
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                (!rest.is_empty() && !rest.contains('/')).then(|| rest.to_string())
            })
            .collect();
        names.sort_unstable();
        let c = self.meta(t, MetaOp::Readdir, path);
        Ok((c, names))
    }

    /// Size of a file right now (no timing charge).
    pub fn size_of(&self, fid: FileId) -> SimResult<u64> {
        Ok(self.state(fid)?.size)
    }

    /// Current writer count of a file.
    pub fn writers_of(&self, fid: FileId) -> SimResult<usize> {
        Ok(self.state(fid)?.writers)
    }

    // ----- data operations -------------------------------------------------

    /// Write `len` bytes at `offset` from `node`. Returns completion time.
    pub fn write(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> SimResult<f64> {
        self.write_inner(t, node, fid, offset, len, true)
    }

    /// Write bypassing the client cache (synchronous per-request paths such
    /// as FUSE, or `O_DIRECT`). Returns completion time.
    pub fn write_through(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> SimResult<f64> {
        self.write_inner(t, node, fid, offset, len, false)
    }

    fn write_inner(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
        allow_cache: bool,
    ) -> SimResult<f64> {
        self.state(fid)?;
        if node >= self.platform.cluster.nodes {
            return Err(SimError::BadNode);
        }
        if len == 0 {
            return Ok(t);
        }
        self.stats.write_ops += 1;
        self.stats.bytes_written += len;
        // Whether absorbed or written through, the new bytes supersede any
        // clean cached copy of the range on every node.
        for cache in self.node_caches.iter_mut() {
            cache.invalidate_read(fid.0 as u64, offset, len);
        }
        let t0 = t + self.platform.cluster.syscall_overhead;

        // 1. Client cache: absorb small writes unless shared-file locking
        //    revokes caching. Contention is between nodes actively writing.
        self.files[fid.0].writing_nodes.insert(node);
        let writers = self.files[fid.0].writing_nodes.len();
        let cacheable =
            allow_cache && !(self.platform.fs.lock.revoke_cache_on_shared && writers > 1);
        let absorbed = self.node_caches[node].absorb(t0, fid.0 as u64, len, cacheable);
        if absorbed {
            self.stats.cache_hits += 1;
            let f = &mut self.files[fid.0];
            f.size = f.size.max(offset + len);
            let c = t0 + len as f64 / self.platform.cluster.mem_bw;
            self.trace.record(TraceRecord {
                kind: TraceKind::Write,
                node,
                file: fid.0,
                offset,
                len,
                start: t,
                end: c,
                cached: true,
            });
            return Ok(self.note(c));
        }
        self.stats.cache_misses += 1;

        // 2. Extent locks: one domain per server owning a touched stripe;
        //    the hold time on each covers that server's share of the
        //    transfer. Acquisitions on different servers overlap (max).
        let write_bw = self.platform.fs.lane_bw * self.platform.fs.write_bw_scale;
        let mut t1 = t0;
        if writers > 1 {
            let lock_cfg = self.platform.fs.lock.clone();
            let shares = self.server_shares(fid, offset, len);
            let f = &mut self.files[fid.0];
            for (server, share) in shares {
                let est = share as f64 / write_bw;
                let lock = f.server_locks.entry(server).or_default();
                let before = lock.conflicts();
                let granted = lock.acquire(&lock_cfg, t0, est, writers);
                self.stats.lock_conflicts += lock.conflicts() - before;
                t1 = t1.max(granted);
            }
        }

        // 3. Client link.
        let t2 = self.node_links[node].serve(t1, len as f64 / self.platform.cluster.link_bw);

        // 4. Stripe the transfer over servers.
        let c = self.transfer(t2, fid, offset, len, true);
        let f = &mut self.files[fid.0];
        f.size = f.size.max(offset + len);
        self.trace.record(TraceRecord {
            kind: TraceKind::Write,
            node,
            file: fid.0,
            offset,
            len,
            start: t,
            end: c,
            cached: false,
        });
        Ok(self.note(c))
    }

    /// Append `len` bytes (write at current EOF).
    pub fn append(&mut self, t: f64, node: usize, fid: FileId, len: u64) -> SimResult<f64> {
        let off = self.state(fid)?.size;
        self.write(t, node, fid, off, len)
    }

    /// Read `len` bytes at `offset` into `node`. Returns completion time.
    pub fn read(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> SimResult<f64> {
        self.read_inner(t, node, fid, offset, len, true)
    }

    /// Block-aligned streaming read (data sieving, readahead): skips the
    /// shared-file seek-interference penalty.
    pub fn read_aligned(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> SimResult<f64> {
        self.read_inner(t, node, fid, offset, len, false)
    }

    fn read_inner(
        &mut self,
        t: f64,
        node: usize,
        fid: FileId,
        offset: u64,
        len: u64,
        interference: bool,
    ) -> SimResult<f64> {
        self.state(fid)?;
        if node >= self.platform.cluster.nodes {
            return Err(SimError::BadNode);
        }
        if len == 0 {
            return Ok(t);
        }
        self.stats.read_ops += 1;
        self.stats.bytes_read += len;
        let t0 = t + self.platform.cluster.syscall_overhead;

        // Clean read cache: a range this node already fetched completes at
        // memory speed and adds no disk-head interference stream.
        if self.node_caches[node].absorb_read(fid.0 as u64, offset, len) {
            self.stats.read_cache_hits += 1;
            self.stats.bytes_read_cached += len;
            let c = t0 + len as f64 / self.platform.cluster.mem_bw;
            self.trace.record(TraceRecord {
                kind: TraceKind::Read,
                node,
                file: fid.0,
                offset,
                len,
                start: t,
                end: c,
                cached: true,
            });
            return Ok(self.note(c));
        }
        self.stats.read_cache_misses += 1;

        if interference {
            self.files[fid.0].reading_nodes.insert(node);
        }
        let t1 = self.node_links[node].serve(t0, len as f64 / self.platform.cluster.link_bw);
        let c = self.transfer(t1, fid, offset, len, false);
        self.node_caches[node].fill_read(fid.0 as u64, offset, len);
        self.trace.record(TraceRecord {
            kind: TraceKind::Read,
            node,
            file: fid.0,
            offset,
            len,
            start: t,
            end: c,
            cached: false,
        });
        Ok(self.note(c))
    }

    /// Flush a node's cached dirty bytes for a file.
    pub fn fsync(&mut self, t: f64, node: usize, fid: FileId) -> SimResult<f64> {
        self.state(fid)?;
        let cache = self.node_caches.get_mut(node).ok_or(SimError::BadNode)?;
        let c = cache.flush_file(t, fid.0 as u64);
        Ok(self.note(c))
    }

    /// Bytes of `[offset, offset+len)` landing on each server.
    fn server_shares(&self, fid: FileId, offset: u64, len: u64) -> Vec<(usize, u64)> {
        let stripe = self.platform.fs.stripe_size.max(1);
        let f = &self.files[fid.0];
        let nservers = self.servers.len().max(1);
        let mut shares: HashMap<usize, u64> = HashMap::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe_idx = cur / stripe;
            let chunk_end = ((stripe_idx + 1) * stripe).min(end);
            let server = (f.stripe_start + (stripe_idx as usize % f.stripe_width)) % nservers;
            *shares.entry(server).or_insert(0) += chunk_end - cur;
            cur = chunk_end;
        }
        let mut out: Vec<(usize, u64)> = shares.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Split `[offset, offset+len)` into stripe chunks and queue each at
    /// its server; completion is the slowest chunk.
    fn transfer(&mut self, t: f64, fid: FileId, offset: u64, len: u64, is_write: bool) -> f64 {
        let fs = &self.platform.fs;
        let bw = if is_write {
            fs.lane_bw * fs.write_bw_scale
        } else {
            fs.lane_bw
        };
        // Interleaved streams from many clients of one file make the disk
        // heads seek: reads of a shared file pay inflated per-request
        // latency (capped), the "increased number of file streams" effect
        // the paper credits PLFS reads with avoiding.
        let openers = self.files[fid.0].reading_nodes.len().max(1) as f64;
        let latency = if is_write {
            fs.per_op_latency
        } else {
            fs.per_op_latency * (1.0 + fs.read_interference * (openers - 1.0)).min(6.0)
        };
        let stripe = fs.stripe_size.max(1);
        let f = &self.files[fid.0];
        let mut done: f64 = t;
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe_idx = cur / stripe;
            let chunk_end = ((stripe_idx + 1) * stripe).min(end);
            let chunk = chunk_end - cur;
            let server = (f.stripe_start + (stripe_idx as usize % f.stripe_width))
                % self.servers.len().max(1);
            let service = latency + chunk as f64 / bw;
            let c = self.servers[server].serve(t, service);
            if c > done {
                done = c;
            }
            cur = chunk_end;
        }
        done
    }

    /// Aggregate achieved bandwidth for a byte count over a wall interval.
    pub fn bandwidth(bytes: u64, start: f64, end: f64) -> f64 {
        if end > start {
            bytes as f64 / (end - start)
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn fs() -> SimFs {
        SimFs::new(presets::toy())
    }

    const MIB: u64 = 1 << 20;

    #[test]
    fn namespace_lifecycle() {
        let mut f = fs();
        f.mkdir(0.0, "/d").unwrap();
        assert!(matches!(f.mkdir(0.0, "/d"), Err(SimError::Exists(_))));
        assert!(matches!(
            f.mkdir(0.0, "/no/parent"),
            Err(SimError::NotFound(_))
        ));
        let (_, id) = f.create(0.0, "/d/f", None).unwrap();
        assert!(f.exists("/d/f"));
        assert!(matches!(
            f.create(0.0, "/d/f", None),
            Err(SimError::Exists(_))
        ));
        let (_, names) = f.readdir(0.0, "/d").unwrap();
        assert_eq!(names, vec!["f"]);
        f.unlink(1.0, "/d/f").unwrap();
        assert!(!f.exists("/d/f"));
        assert!(f.size_of(id).is_err(), "dead handle rejected");
    }

    #[test]
    fn write_advances_size_and_clock() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let c = f.write(t, 0, id, 0, 8 * MIB).unwrap();
        assert!(c > t, "writing takes time");
        assert_eq!(f.size_of(id).unwrap(), 8 * MIB);
        let c2 = f.append(c, 0, id, MIB).unwrap();
        assert!(c2 > c);
        assert_eq!(f.size_of(id).unwrap(), 9 * MIB);
        let s = f.stats();
        assert_eq!(s.bytes_written, 9 * MIB);
        assert_eq!(s.write_ops, 2);
        assert!(s.makespan >= c2);
    }

    #[test]
    fn parallel_files_beat_shared_file() {
        // The PLFS premise: N writers to N files finish faster than N
        // writers to 1 shared file (once the extent-lock contention between
        // writing nodes is established).
        let writers = 8usize;
        let rounds = 4u64;
        let piece = 4 * MIB;

        // Platform where the lock hold fully serialises contended
        // transfers (many lanes, so the data path itself is not the
        // bottleneck — the lock is, as on a real parallel FS).
        let mut platform = presets::toy();
        platform.fs.lanes_per_server = 8;
        platform.fs.lock.hold_transfer_fraction = 1.0;

        // Shared file.
        let mut f = SimFs::new(platform.clone());
        let (t0, shared) = f.create(0.0, "/shared", None).unwrap();
        for _ in 0..writers {
            f.add_writer(shared).unwrap();
        }
        let mut shared_done: f64 = 0.0;
        for round in 0..rounds {
            for w in 0..writers {
                let off = (round * writers as u64 + w as u64) * piece;
                let c = f.write(t0, w % 2, shared, off, piece).unwrap();
                shared_done = shared_done.max(c);
            }
        }

        // Unique files (same total volume, same nodes).
        let mut f = SimFs::new(platform);
        let mut unique_done: f64 = 0.0;
        for w in 0..writers {
            let (t, id) = f.create(0.0, &format!("/u{w}"), None).unwrap();
            f.open(t, &format!("/u{w}"), true).unwrap();
            for round in 0..rounds {
                let c = f.write(t, w % 2, id, round * piece, piece).unwrap();
                unique_done = unique_done.max(c);
            }
        }

        assert!(
            unique_done < shared_done,
            "unique={unique_done} shared={shared_done}"
        );
    }

    #[test]
    fn small_writes_absorb_in_cache() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let c = f.write(t, 0, id, 0, 64 * 1024).unwrap();
        // Memory-speed completion: far faster than a server round trip.
        assert!(c - t < 1e-3, "cached write too slow: {}", c - t);
        assert_eq!(f.stats().cache_hits, 1);
        // fsync pays the drain.
        let c2 = f.fsync(c, 0, id).unwrap();
        assert!(c2 > c);
    }

    #[test]
    fn shared_writers_revoke_cache() {
        let mut f = fs(); // toy preset revokes cache on shared files
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.add_writer(id).unwrap();
        f.add_writer(id).unwrap();
        // The sole writing node still caches (lock is cached locally).
        f.write(t, 0, id, 0, 64 * 1024).unwrap();
        assert_eq!(f.stats().cache_hits, 1);
        // A second node writing makes the file contended: caching revoked
        // for it and for subsequent writes from the first node.
        f.write(t, 1, id, 64 * 1024, 64 * 1024).unwrap();
        f.write(t, 0, id, 128 * 1024, 64 * 1024).unwrap();
        assert_eq!(f.stats().cache_hits, 1);
        assert_eq!(f.stats().cache_misses, 2);
        assert!(f.stats().lock_conflicts > 0);
    }

    #[test]
    fn reads_charge_servers_and_links() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let c = f.write(t, 0, id, 0, 16 * MIB).unwrap();
        let r = f.read(c, 1, id, 0, 16 * MIB).unwrap();
        assert!(r > c);
        assert_eq!(f.stats().bytes_read, 16 * MIB);
    }

    fn read_cached_fs(read_capacity: u64) -> SimFs {
        let mut p = presets::toy();
        p.fs.cache.read_capacity = read_capacity;
        SimFs::new(p)
    }

    #[test]
    fn reread_absorbs_at_memory_speed() {
        let mut f = read_cached_fs(64 * MIB);
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let wrote = f.write(t, 0, id, 0, 16 * MIB).unwrap();
        let cold = f.read(wrote, 1, id, 0, 16 * MIB).unwrap();
        let warm = f.read(cold, 1, id, 0, 16 * MIB).unwrap();
        // The warm re-read never leaves the node: memory copy plus the
        // syscall, orders of magnitude under the server path.
        assert!(
            (warm - cold) * 10.0 < cold - wrote,
            "warm={} cold={}",
            warm - cold,
            cold - wrote
        );
        let s = f.stats();
        assert_eq!((s.read_cache_hits, s.read_cache_misses), (1, 1));
        assert_eq!(s.bytes_read_cached, 16 * MIB);
        assert_eq!(s.bytes_read, 32 * MIB);
        // Another node is still cold.
        f.read(warm, 0, id, 0, 16 * MIB).unwrap();
        assert_eq!(f.stats().read_cache_hits, 1);
    }

    #[test]
    fn write_invalidates_cached_reads_on_every_node() {
        let mut f = read_cached_fs(64 * MIB);
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let c = f.write(t, 0, id, 0, 8 * MIB).unwrap();
        let c = f.read(c, 1, id, 0, 8 * MIB).unwrap();
        // Node 0 overwrites the middle; node 1's cached copy is stale
        // there but still clean at the prefix.
        let c = f.write(c, 0, id, MIB, MIB).unwrap();
        let c = f.read(c, 1, id, 0, MIB).unwrap();
        let _ = f.read(c, 1, id, MIB, MIB).unwrap();
        let s = f.stats();
        assert_eq!(
            (s.read_cache_hits, s.read_cache_misses),
            (1, 2),
            "prefix hits, overwritten range refetches: {s:?}"
        );
    }

    #[test]
    fn read_cache_off_by_default_in_presets() {
        let mut f = fs(); // toy preset: read_capacity 0
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        let c = f.write(t, 0, id, 0, 4 * MIB).unwrap();
        let c = f.read(c, 1, id, 0, 4 * MIB).unwrap();
        f.read(c, 1, id, 0, 4 * MIB).unwrap();
        let s = f.stats();
        assert_eq!(s.read_cache_hits, 0, "no read caching unless configured");
        assert_eq!(s.bytes_read_cached, 0);
    }

    #[test]
    fn zero_length_ops_are_free() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        assert_eq!(f.write(t, 0, id, 0, 0).unwrap(), t);
        assert_eq!(f.read(t, 0, id, 0, 0).unwrap(), t);
    }

    #[test]
    fn bad_node_rejected() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        assert!(matches!(f.write(t, 999, id, 0, 1), Err(SimError::BadNode)));
    }

    #[test]
    fn stripe_width_one_uses_one_server() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/narrow", Some(1)).unwrap();
        f.open(t, "/narrow", true).unwrap();
        // Two stripes' worth of data on a width-1 file must serialize on
        // one server; on a wide file they can parallelize.
        let stripe = f.platform().fs.stripe_size;
        let narrow = f.write(t, 0, id, 0, stripe * 4).unwrap();

        let mut f2 = fs();
        let (t2, id2) = f2.create(0.0, "/wide", Some(2)).unwrap();
        f2.open(t2, "/wide", true).unwrap();
        let wide = f2.write(t2, 0, id2, 0, stripe * 4).unwrap();
        assert!(wide < narrow, "wide={wide} narrow={narrow}");
    }

    #[test]
    fn trace_records_ops_when_enabled() {
        let mut f = fs();
        f.enable_trace();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        f.open(t, "/f", true).unwrap();
        f.write(t, 0, id, 0, 8 * MIB).unwrap();
        f.read(1.0, 0, id, 0, MIB).unwrap();
        use crate::trace::TraceKind;
        let (wc, wb, _) = f.trace().summary(TraceKind::Write);
        assert_eq!((wc, wb), (1, 8 * MIB));
        let (rc, rb, _) = f.trace().summary(TraceKind::Read);
        assert_eq!((rc, rb), (1, MIB));
        assert!(f.trace().summary(TraceKind::Meta).0 >= 2, "create + open");
    }

    #[test]
    fn makespan_tracks_latest_completion() {
        let mut f = fs();
        let (t, id) = f.create(0.0, "/f", None).unwrap();
        let c = f.write(t, 0, id, 0, 4 * MIB).unwrap();
        assert!(f.stats().makespan >= c);
    }
}
