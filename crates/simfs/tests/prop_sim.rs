//! Property tests: simulator invariants under arbitrary op sequences.

use proptest::prelude::*;
use simfs::{presets, SimFs};

/// A generated op against one pre-created file.
#[derive(Debug, Clone, Copy)]
enum SimOp {
    Write { node: u8, off: u32, len: u32 },
    Read { node: u8, off: u32, len: u32 },
    Fsync { node: u8 },
    Stat,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<SimOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u32..(64 << 20), 1u32..(8 << 20)).prop_map(|(node, off, len)| SimOp::Write {
                node,
                off,
                len
            }),
            (0u8..4, 0u32..(64 << 20), 1u32..(8 << 20)).prop_map(|(node, off, len)| SimOp::Read {
                node,
                off,
                len
            }),
            (0u8..4).prop_map(|node| SimOp::Fsync { node }),
            Just(SimOp::Stat),
        ],
        1..max,
    )
}

/// Drive the ops, chaining time so arrivals are non-decreasing; returns
/// (per-op completion times, stats).
fn drive(fs: &mut SimFs, ops: &[SimOp]) -> Vec<f64> {
    let (t, id) = fs.create(0.0, "/f", None).unwrap();
    fs.open(t, "/f", true).unwrap();
    let mut now = t;
    let mut completions = Vec::with_capacity(ops.len());
    for op in ops {
        let c = match *op {
            SimOp::Write { node, off, len } => fs
                .write(now, node as usize, id, off as u64, len as u64)
                .unwrap(),
            SimOp::Read { node, off, len } => fs
                .read(now, node as usize, id, off as u64, len as u64)
                .unwrap(),
            SimOp::Fsync { node } => fs.fsync(now, node as usize, id).unwrap(),
            SimOp::Stat => fs.stat(now, "/f").unwrap().0,
        };
        completions.push(c);
        now = c.max(now);
    }
    completions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completions never precede their arrivals, and chained time is
    /// monotone.
    #[test]
    fn time_is_monotone(ops in ops(40)) {
        let mut fs = SimFs::new(presets::toy());
        let completions = drive(&mut fs, &ops);
        let mut last = 0.0f64;
        for (i, &c) in completions.iter().enumerate() {
            prop_assert!(c >= last - 1e-12, "op {i}: {c} < {last}");
            prop_assert!(c.is_finite());
            last = last.max(c);
        }
        prop_assert!(fs.stats().makespan >= last - 1e-9);
    }

    /// Byte accounting is exact: stats equal the sum of issued op sizes.
    #[test]
    fn bytes_are_conserved(ops in ops(40)) {
        let mut fs = SimFs::new(presets::sierra());
        drive(&mut fs, &ops);
        let (mut ww, mut rr) = (0u64, 0u64);
        for op in &ops {
            match *op {
                SimOp::Write { len, .. } => ww += len as u64,
                SimOp::Read { len, .. } => rr += len as u64,
                _ => {}
            }
        }
        let s = fs.stats();
        prop_assert_eq!(s.bytes_written, ww);
        prop_assert_eq!(s.bytes_read, rr);
        prop_assert_eq!(s.cache_hits + s.cache_misses, ww.min(1) * s.write_ops);
    }

    /// The simulator is deterministic: identical inputs, identical timings.
    #[test]
    fn deterministic_replay(ops in ops(30)) {
        let mut a = SimFs::new(presets::minerva());
        let mut b = SimFs::new(presets::minerva());
        let ca = drive(&mut a, &ops);
        let cb = drive(&mut b, &ops);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(a.stats().makespan.to_bits(), b.stats().makespan.to_bits());
    }

    /// More hardware never hurts: doubling server lanes cannot increase
    /// any completion time (work-conserving queues).
    #[test]
    fn more_lanes_never_slower(ops in ops(24)) {
        let small = presets::toy();
        let mut big = presets::toy();
        big.fs.lanes_per_server *= 2;
        let mut fs_small = SimFs::new(small);
        let mut fs_big = SimFs::new(big);
        let cs = drive(&mut fs_small, &ops);
        let cb = drive(&mut fs_big, &ops);
        // Chained issue times differ once one op is faster, so compare the
        // final makespan rather than per-op times.
        let last_small = cs.last().copied().unwrap_or(0.0);
        let last_big = cb.last().copied().unwrap_or(0.0);
        prop_assert!(last_big <= last_small + 1e-9, "{last_big} > {last_small}");
    }

    /// File size is the max write end, regardless of op interleaving.
    #[test]
    fn size_is_max_write_end(ops in ops(30)) {
        let mut fs = SimFs::new(presets::toy());
        let (t, id) = fs.create(0.0, "/g", None).unwrap();
        let mut now = t;
        let mut expect = 0u64;
        for op in &ops {
            if let SimOp::Write { node, off, len } = *op {
                now = fs.write(now, (node % 4) as usize, id, off as u64, len as u64).unwrap();
                expect = expect.max(off as u64 + len as u64);
            }
        }
        prop_assert_eq!(fs.size_of(id).unwrap(), expect);
    }
}
