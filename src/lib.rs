pub fn suite_marker() {}
