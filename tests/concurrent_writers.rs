//! Integration: real thread-parallel N-to-1 writes through the shim.
//!
//! The paper's core workload — N processes checkpointing into one logical
//! file — exercised with actual OS threads (crossbeam scoped), each with
//! its own virtual pid, all funnelled through one `LdPlfs` instance into
//! one container. The result must be complete and byte-correct, and the
//! container must show the N-stream structure of Figure 1.

use ldplfs::{set_virtual_pid, LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix};
use plfs::{CacheConf, MemBacking, Plfs, WriteConf};
use proptest::prelude::*;
use std::sync::Arc;

fn shim(tag: &str) -> (Arc<ldplfs::LdPlfs>, Arc<MemBacking>) {
    let dir = std::env::temp_dir().join(format!("ldplfs-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let under = Arc::new(RealPosix::rooted(dir).unwrap());
    let backing = Arc::new(MemBacking::new());
    let shim = Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(backing.clone()))
            .build()
            .unwrap(),
    );
    (shim, backing)
}

/// rank r writes the byte pattern `r` into its strided slots.
fn expected(ranks: usize, rows: usize, block: usize) -> Vec<u8> {
    let mut out = vec![0u8; ranks * rows * block];
    for row in 0..rows {
        for r in 0..ranks {
            let start = (row * ranks + r) * block;
            out[start..start + block].fill(r as u8 + 1);
        }
    }
    out
}

#[test]
fn strided_checkpoint_from_threads() {
    let (shim, _backing) = shim("strided");
    let ranks = 8usize;
    let rows = 16usize;
    let block = 1024usize;

    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(1000 + r as u64);
                let fd = shim
                    .open("/plfs/ckpt", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                let data = vec![r as u8 + 1; block];
                for row in 0..rows {
                    let off = ((row * ranks + r) * block) as u64;
                    assert_eq!(shim.pwrite(fd, &data, off).unwrap(), block);
                }
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();

    // Read back through the shim (fresh fd) and compare.
    let fd = shim.open("/plfs/ckpt", OpenFlags::RDONLY, 0).unwrap();
    let want = expected(ranks, rows, block);
    let mut got = vec![0u8; want.len()];
    let mut done = 0;
    while done < got.len() {
        let n = shim.pread(fd, &mut got[done..], done as u64).unwrap();
        assert!(n > 0, "short file: got only {done} bytes");
        done += n;
    }
    shim.close(fd).unwrap();
    assert_eq!(got, want);
}

#[test]
fn container_shows_one_stream_per_writer() {
    let (shim, backing) = shim("streams");
    let ranks = 6;
    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(2000 + r as u64);
                let fd = shim
                    .open("/plfs/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                shim.pwrite(fd, &[r as u8; 64], r as u64 * 64).unwrap();
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();

    // Figure 1: n writers → n data droppings (plus indices), spread over
    // hostdirs.
    let droppings = plfs::container::list_droppings(backing.as_ref(), "/f").unwrap();
    assert_eq!(droppings.len(), ranks, "one data dropping per writer pid");
    for d in &droppings {
        assert!(d.index_path.is_some(), "each data dropping has its index");
    }
}

#[test]
fn mixed_readers_and_writers() {
    let (shim, _) = shim("mixed");
    // Phase 1: writers fill disjoint regions.
    crossbeam::scope(|scope| {
        for r in 0..4usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(3000 + r as u64);
                let fd = shim
                    .open("/plfs/shared", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                shim.pwrite(fd, &[0x40 + r as u8; 256], r as u64 * 256)
                    .unwrap();
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();
    // Phase 2: concurrent readers each verify a region written by another
    // thread.
    crossbeam::scope(|scope| {
        for r in 0..4usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(4000 + r as u64);
                let fd = shim.open("/plfs/shared", OpenFlags::RDONLY, 0).unwrap();
                let peer = (r + 1) % 4;
                let mut buf = [0u8; 256];
                assert_eq!(shim.pread(fd, &mut buf, peer as u64 * 256).unwrap(), 256);
                assert!(buf.iter().all(|&b| b == 0x40 + peer as u8));
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();
}

#[test]
fn many_files_concurrently() {
    let (shim, _) = shim("manyfiles");
    crossbeam::scope(|scope| {
        for r in 0..8usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(5000 + r as u64);
                for k in 0..5 {
                    let path = format!("/plfs/job{r}/out{k}");
                    if k == 0 {
                        shim.mkdir(&format!("/plfs/job{r}"), 0o755).unwrap();
                    }
                    let fd = shim
                        .open(&path, OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
                        .unwrap();
                    shim.write(fd, format!("r{r}k{k}").as_bytes()).unwrap();
                    shim.close(fd).unwrap();
                }
            });
        }
    })
    .unwrap();
    for r in 0..8 {
        for k in 0..5 {
            let st = shim.stat(&format!("/plfs/job{r}/out{k}")).unwrap();
            assert_eq!(st.size, 4);
        }
        let ents = shim.readdir(&format!("/plfs/job{r}")).unwrap();
        assert_eq!(ents.len(), 5);
    }
}

// ---------------------------------------------------------------------------
// PR 3: one PlfsFd hammered by racing pids through the sharded write path.
// ---------------------------------------------------------------------------

/// Racing threads × pids doing write/sync/read through ONE `PlfsFd` with
/// the sharded, write-behind-buffered configuration. Each rank re-reads its
/// own region through the same fd while the others keep writing
/// (read-your-writes under contention), and the final file is byte-exact.
#[test]
fn racing_pids_share_one_fd_read_your_writes() {
    racing_read_your_writes(
        Plfs::new(Arc::new(MemBacking::new()))
            .with_write_conf(WriteConf::default().with_data_buffer_bytes(512)),
    );
}

/// Same race with the data block cache and readahead in the loop: every
/// interleaved write must invalidate or out-date the cached blocks its
/// region touched before the racing re-read observes them.
#[test]
fn racing_pids_read_your_writes_with_block_cache() {
    racing_read_your_writes(
        Plfs::new(Arc::new(MemBacking::new()))
            .with_write_conf(WriteConf::default().with_data_buffer_bytes(512))
            .with_cache_conf(
                CacheConf::sized(32 * 1024)
                    .with_block_bytes(512)
                    .with_readahead(1024, 4096),
            ),
    );
}

fn racing_read_your_writes(plfs: Plfs) {
    let ranks = 8usize;
    let rows = 16usize;
    let block = 64usize;
    let fd = plfs
        .open("/stress", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    for r in 1..ranks as u64 {
        fd.add_ref(r);
    }
    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let plfs = &plfs;
            let fd = fd.clone();
            scope.spawn(move |_| {
                let pid = r as u64;
                let pat = vec![r as u8 + 1; block];
                for row in 0..rows {
                    let off = ((row * ranks + r) * block) as u64;
                    assert_eq!(plfs.write(&fd, &pat, off, pid).unwrap(), block);
                    if row % 4 == 3 {
                        plfs.sync(&fd, pid).unwrap();
                    }
                    let mut got = vec![0u8; block];
                    let mut done = 0;
                    while done < block {
                        let n = plfs.read(&fd, &mut got[done..], off + done as u64).unwrap();
                        assert!(n > 0, "rank {r} short read at row {row}");
                        done += n;
                    }
                    assert_eq!(got, pat, "rank {r} lost its own row {row}");
                }
            });
        }
    })
    .unwrap();
    for r in 0..ranks as u64 {
        plfs.close(&fd, r).unwrap();
    }

    let fd = plfs.open("/stress", OpenFlags::RDONLY, 99).unwrap();
    let want = expected(ranks, rows, block);
    let mut got = vec![0u8; want.len()];
    let mut done = 0;
    while done < got.len() {
        let n = plfs.read(&fd, &mut got[done..], done as u64).unwrap();
        assert!(n > 0, "short final read at {done}");
        done += n;
    }
    assert_eq!(got, want);
}

/// Racing appenders on one fd: the atomic EOF hands every append a
/// disjoint slot, so no byte is lost or overwritten even with the
/// write-behind buffer coalescing under the shard locks.
#[test]
fn racing_appenders_account_for_every_byte() {
    let plfs = Plfs::new(Arc::new(MemBacking::new()))
        .with_write_conf(WriteConf::default().with_data_buffer_bytes(256));
    let ranks = 8usize;
    let appends = 32usize;
    let fd = plfs
        .open("/applog", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    for r in 1..ranks as u64 {
        fd.add_ref(r);
    }
    // Every thread records where its appends landed.
    let slots = std::sync::Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let plfs = &plfs;
            let fd = fd.clone();
            let slots = &slots;
            scope.spawn(move |_| {
                let pid = r as u64;
                let len = 16 + r * 3; // distinct lengths per rank
                let chunk = vec![r as u8 + 1; len];
                let mut mine = Vec::with_capacity(appends);
                for i in 0..appends {
                    let (off, n) = fd.append(&chunk, pid).unwrap();
                    assert_eq!(n, len);
                    mine.push((off, len, r as u8 + 1));
                    if i % 8 == 7 {
                        plfs.sync(&fd, pid).unwrap();
                    }
                }
                slots.lock().unwrap().extend(mine);
            });
        }
    })
    .unwrap();
    let total: usize = (0..ranks).map(|r| (16 + r * 3) * appends).sum();
    assert_eq!(fd.size().unwrap(), total as u64, "appends lost bytes");
    for r in 0..ranks as u64 {
        plfs.close(&fd, r).unwrap();
    }

    let fd = plfs.open("/applog", OpenFlags::RDONLY, 99).unwrap();
    let mut got = vec![0u8; total];
    let mut done = 0;
    while done < total {
        let n = plfs.read(&fd, &mut got[done..], done as u64).unwrap();
        assert!(n > 0, "short read at {done}");
        done += n;
    }
    // Slots are disjoint and each holds its writer's fill byte.
    let mut slots = slots.into_inner().unwrap();
    slots.sort_unstable();
    let mut covered = 0u64;
    for (off, len, byte) in slots {
        assert_eq!(off, covered, "gap or overlap at offset {off}");
        covered = off + len as u64;
        assert!(
            got[off as usize..off as usize + len]
                .iter()
                .all(|&b| b == byte),
            "slot at {off} clobbered"
        );
    }
    assert_eq!(covered, total as u64);
}

// ---------------------------------------------------------------------------
// Property: the sharded + buffered write path is byte-identical to the
// serial one (1 shard, 0-byte buffer, full re-merge on read).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write {
        pid: u64,
        offset: u64,
        data: Vec<u8>,
    },
    Append {
        pid: u64,
        data: Vec<u8>,
    },
    Read,
    Sync {
        pid: u64,
    },
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (
                0u64..4,
                0u64..2048,
                prop::collection::vec(any::<u8>(), 1..96)
            )
                .prop_map(|(pid, offset, data)| Op::Write { pid, offset, data }),
            (0u64..4, prop::collection::vec(any::<u8>(), 1..96))
                .prop_map(|(pid, data)| Op::Append { pid, data }),
            Just(Op::Read),
            (0u64..4).prop_map(|pid| Op::Sync { pid }),
        ],
        1..max_ops,
    )
}

/// Apply `ops` single-threaded (deterministic append order) under `conf`
/// and return the final logical bytes, checking interleaved reads against
/// the running byte-vector model as we go.
fn apply_ops(ops: &[Op], conf: WriteConf) -> Vec<u8> {
    apply_ops_cached(ops, conf, CacheConf::disabled())
}

fn apply_ops_cached(ops: &[Op], conf: WriteConf, cache: CacheConf) -> Vec<u8> {
    let plfs = Plfs::new(Arc::new(MemBacking::new()))
        .with_write_conf(conf)
        .with_cache_conf(cache);
    let fd = plfs
        .open("/prop", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    for p in 1..4u64 {
        fd.add_ref(p);
    }
    let mut model: Vec<u8> = Vec::new();
    let place = |model: &mut Vec<u8>, off: usize, data: &[u8]| {
        if model.len() < off + data.len() {
            model.resize(off + data.len(), 0);
        }
        model[off..off + data.len()].copy_from_slice(data);
    };
    for op in ops {
        match op {
            Op::Write { pid, offset, data } => {
                assert_eq!(plfs.write(&fd, data, *offset, *pid).unwrap(), data.len());
                place(&mut model, *offset as usize, data);
            }
            Op::Append { pid, data } => {
                let (off, n) = fd.append(data, *pid).unwrap();
                assert_eq!(n, data.len());
                assert_eq!(off as usize, model.len(), "append missed EOF");
                place(&mut model, off as usize, data);
            }
            Op::Read => {
                let size = fd.size().unwrap() as usize;
                assert_eq!(size, model.len());
                let mut got = vec![0u8; size];
                let mut done = 0;
                while done < size {
                    let n = plfs.read(&fd, &mut got[done..], done as u64).unwrap();
                    assert!(n > 0);
                    done += n;
                }
                assert_eq!(got, model, "interleaved read diverged from model");
            }
            Op::Sync { pid } => plfs.sync(&fd, *pid).unwrap(),
        }
    }
    let size = fd.size().unwrap() as usize;
    let mut out = vec![0u8; size];
    let mut done = 0;
    while done < size {
        let n = plfs.read(&fd, &mut out[done..], done as u64).unwrap();
        assert!(n > 0);
        done += n;
    }
    for p in 0..4u64 {
        plfs.close(&fd, p).unwrap();
    }
    assert_eq!(out, model);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded + write-behind-buffered + incrementally-refreshed output is
    /// byte-identical to the serial reference path for any op sequence.
    #[test]
    fn sharded_buffered_matches_serial_path(ops in ops_strategy(40)) {
        let fast = apply_ops(
            &ops,
            WriteConf::default()
                .with_write_shards(16)
                .with_data_buffer_bytes(1024)
                .with_incremental_refresh(true),
        );
        let slow = apply_ops(&ops, WriteConf::serial());
        prop_assert_eq!(fast, slow);
    }

    /// The same holds with the block cache and readahead in the write/read
    /// interleave: caching must never let a read observe pre-write bytes.
    #[test]
    fn cached_interleave_matches_serial_path(ops in ops_strategy(40)) {
        let cached = apply_ops_cached(
            &ops,
            WriteConf::default()
                .with_write_shards(16)
                .with_data_buffer_bytes(1024)
                .with_incremental_refresh(true),
            CacheConf::sized(2048)
                .with_block_bytes(512)
                .with_readahead(1024, 4096),
        );
        let slow = apply_ops(&ops, WriteConf::serial());
        prop_assert_eq!(cached, slow);
    }
}
