//! Integration: real thread-parallel N-to-1 writes through the shim.
//!
//! The paper's core workload — N processes checkpointing into one logical
//! file — exercised with actual OS threads (crossbeam scoped), each with
//! its own virtual pid, all funnelled through one `LdPlfs` instance into
//! one container. The result must be complete and byte-correct, and the
//! container must show the N-stream structure of Figure 1.

use ldplfs::{set_virtual_pid, LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix};
use plfs::{MemBacking, Plfs};
use std::sync::Arc;

fn shim(tag: &str) -> (Arc<ldplfs::LdPlfs>, Arc<MemBacking>) {
    let dir = std::env::temp_dir().join(format!("ldplfs-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let under = Arc::new(RealPosix::rooted(dir).unwrap());
    let backing = Arc::new(MemBacking::new());
    let shim = Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(backing.clone()))
            .build()
            .unwrap(),
    );
    (shim, backing)
}

/// rank r writes the byte pattern `r` into its strided slots.
fn expected(ranks: usize, rows: usize, block: usize) -> Vec<u8> {
    let mut out = vec![0u8; ranks * rows * block];
    for row in 0..rows {
        for r in 0..ranks {
            let start = (row * ranks + r) * block;
            out[start..start + block].fill(r as u8 + 1);
        }
    }
    out
}

#[test]
fn strided_checkpoint_from_threads() {
    let (shim, _backing) = shim("strided");
    let ranks = 8usize;
    let rows = 16usize;
    let block = 1024usize;

    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(1000 + r as u64);
                let fd = shim
                    .open("/plfs/ckpt", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                let data = vec![r as u8 + 1; block];
                for row in 0..rows {
                    let off = ((row * ranks + r) * block) as u64;
                    assert_eq!(shim.pwrite(fd, &data, off).unwrap(), block);
                }
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();

    // Read back through the shim (fresh fd) and compare.
    let fd = shim.open("/plfs/ckpt", OpenFlags::RDONLY, 0).unwrap();
    let want = expected(ranks, rows, block);
    let mut got = vec![0u8; want.len()];
    let mut done = 0;
    while done < got.len() {
        let n = shim.pread(fd, &mut got[done..], done as u64).unwrap();
        assert!(n > 0, "short file: got only {done} bytes");
        done += n;
    }
    shim.close(fd).unwrap();
    assert_eq!(got, want);
}

#[test]
fn container_shows_one_stream_per_writer() {
    let (shim, backing) = shim("streams");
    let ranks = 6;
    crossbeam::scope(|scope| {
        for r in 0..ranks {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(2000 + r as u64);
                let fd = shim
                    .open("/plfs/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                shim.pwrite(fd, &[r as u8; 64], r as u64 * 64).unwrap();
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();

    // Figure 1: n writers → n data droppings (plus indices), spread over
    // hostdirs.
    let droppings = plfs::container::list_droppings(backing.as_ref(), "/f").unwrap();
    assert_eq!(droppings.len(), ranks, "one data dropping per writer pid");
    for d in &droppings {
        assert!(d.index_path.is_some(), "each data dropping has its index");
    }
}

#[test]
fn mixed_readers_and_writers() {
    let (shim, _) = shim("mixed");
    // Phase 1: writers fill disjoint regions.
    crossbeam::scope(|scope| {
        for r in 0..4usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(3000 + r as u64);
                let fd = shim
                    .open("/plfs/shared", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
                    .unwrap();
                shim.pwrite(fd, &[0x40 + r as u8; 256], r as u64 * 256)
                    .unwrap();
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();
    // Phase 2: concurrent readers each verify a region written by another
    // thread.
    crossbeam::scope(|scope| {
        for r in 0..4usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(4000 + r as u64);
                let fd = shim.open("/plfs/shared", OpenFlags::RDONLY, 0).unwrap();
                let peer = (r + 1) % 4;
                let mut buf = [0u8; 256];
                assert_eq!(shim.pread(fd, &mut buf, peer as u64 * 256).unwrap(), 256);
                assert!(buf.iter().all(|&b| b == 0x40 + peer as u8));
                shim.close(fd).unwrap();
            });
        }
    })
    .unwrap();
}

#[test]
fn many_files_concurrently() {
    let (shim, _) = shim("manyfiles");
    crossbeam::scope(|scope| {
        for r in 0..8usize {
            let shim = shim.clone();
            scope.spawn(move |_| {
                set_virtual_pid(5000 + r as u64);
                for k in 0..5 {
                    let path = format!("/plfs/job{r}/out{k}");
                    if k == 0 {
                        shim.mkdir(&format!("/plfs/job{r}"), 0o755).unwrap();
                    }
                    let fd = shim
                        .open(&path, OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
                        .unwrap();
                    shim.write(fd, format!("r{r}k{k}").as_bytes()).unwrap();
                    shim.close(fd).unwrap();
                }
            });
        }
    })
    .unwrap();
    for r in 0..8 {
        for k in 0..5 {
            let st = shim.stat(&format!("/plfs/job{r}/out{k}")).unwrap();
            assert_eq!(st.size, 4);
        }
        let ents = shim.readdir(&format!("/plfs/job{r}")).unwrap();
        assert_eq!(ents.len(), 5);
    }
}
