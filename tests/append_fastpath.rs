//! Integration: trace-verified O(1) append fast path.
//!
//! PR 3's contract for `O_APPEND` workloads: resolving EOF for an append
//! costs one relaxed atomic `fetch_add`, never an index merge. These tests
//! turn the global trace sink on and assert on the recorded op mix — a run
//! of appends must emit zero `index_merge`/`index_merge_par` ops (only
//! `append_fastpath`), and interleaving reads with appends must stay
//! read-your-writes while refreshing the cached reader by `index_patch`
//! rather than re-merging every dropping.
//!
//! The global sink is process-wide state, so the tests serialize on a
//! static mutex and scope `set_enabled` to their own run.

use iotrace::OpKind;
use ldplfs::{set_virtual_pid, LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix};
use plfs::{MemBacking, Plfs};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serialize tests that mutate the process-global trace sink.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn shim(tag: &str) -> Arc<ldplfs::LdPlfs> {
    let dir = std::env::temp_dir().join(format!("ldplfs-append-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let under = Arc::new(RealPosix::rooted(dir).unwrap());
    Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(Arc::new(MemBacking::new())))
            .build()
            .unwrap(),
    )
}

/// Total recorded ops of `kind` across all layers.
fn ops_of(kind: OpKind) -> u64 {
    iotrace::global()
        .snapshot()
        .entries
        .iter()
        .filter(|e| e.op == kind)
        .map(|e| e.ops)
        .sum()
}

#[test]
fn o_append_run_emits_zero_index_merges() {
    let _g = trace_lock();
    let shim = shim("nomerge");
    set_virtual_pid(100);
    let sink = iotrace::global();
    sink.reset();
    sink.set_enabled(true);

    // A whole O_APPEND lifecycle under tracing: create, append, stat,
    // close, reopen (EOF re-seeded from the on-disk index), append again.
    let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND;
    let fd = shim.open("/plfs/log", flags, 0o644).unwrap();
    for i in 0..64u64 {
        assert_eq!(shim.write(fd, &[i as u8; 32]).unwrap(), 32);
        // fstat of an open append fd answers from the cached atomic EOF.
        assert_eq!(shim.fstat(fd).unwrap().size, (i + 1) * 32);
    }
    shim.close(fd).unwrap();
    let fd = shim
        .open("/plfs/log", OpenFlags::WRONLY | OpenFlags::APPEND, 0o644)
        .unwrap();
    for _ in 0..16 {
        assert_eq!(shim.write(fd, b"tail-bytes").unwrap(), 10);
    }
    shim.close(fd).unwrap();
    assert_eq!(shim.stat("/plfs/log").unwrap().size, 64 * 32 + 16 * 10);

    sink.set_enabled(false);
    assert_eq!(
        ops_of(OpKind::IndexMerge) + ops_of(OpKind::IndexMergePar),
        0,
        "appends and stats must not trigger an index merge"
    );
    assert_eq!(
        ops_of(OpKind::AppendFastpath),
        80,
        "every O_APPEND write takes the atomic-EOF fast path"
    );
}

#[test]
fn interleaved_append_and_read_stays_read_your_writes() {
    let _g = trace_lock();
    let shim = shim("interleave");
    set_virtual_pid(200);
    let sink = iotrace::global();
    sink.reset();
    sink.set_enabled(true);

    let flags = OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::APPEND;
    let fd = shim.open("/plfs/journal", flags, 0o644).unwrap();
    let mut model = Vec::new();
    for i in 0..24u64 {
        let chunk = vec![b'a' + (i % 26) as u8; 17 + (i as usize % 5)];
        assert_eq!(shim.write(fd, &chunk).unwrap(), chunk.len());
        model.extend_from_slice(&chunk);
        // Every append must be visible to an immediate read of the whole
        // file through the same shim.
        let mut got = vec![0u8; model.len()];
        let mut done = 0;
        while done < got.len() {
            let n = shim.pread(fd, &mut got[done..], done as u64).unwrap();
            assert!(n > 0, "short read at {done} of {}", got.len());
            done += n;
        }
        assert_eq!(got, model, "read after append {i} lost bytes");
    }
    shim.close(fd).unwrap();

    sink.set_enabled(false);
    let merges = ops_of(OpKind::IndexMerge) + ops_of(OpKind::IndexMergePar);
    assert!(
        merges <= 1,
        "only the first read may build the index from scratch (saw {merges} merges)"
    );
    assert!(
        ops_of(OpKind::IndexPatch) >= 1,
        "later reads refresh the cached index incrementally"
    );
    assert_eq!(ops_of(OpKind::AppendFastpath), 24);
}
