//! Integration: storage failures propagate cleanly through the whole stack
//! (faulty backing → PLFS → shim → application code), and recovery tooling
//! restores service.

use ldplfs::{Errno, LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix};
use plfs::{FaultKind, FaultOp, FaultRule, Faulty, MemBacking, Plfs};
use std::sync::Arc;

fn stack(tag: &str) -> (Arc<Faulty>, ldplfs::LdPlfs) {
    let dir = std::env::temp_dir().join(format!("ldplfs-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let under = Arc::new(RealPosix::rooted(dir).unwrap());
    let faulty = Arc::new(Faulty::new(Arc::new(MemBacking::new())));
    let shim = LdPlfsBuilder::new(under)
        .mount("/plfs", Plfs::new(faulty.clone()))
        .build()
        .unwrap();
    (faulty, shim)
}

fn rule(op: FaultOp, path: &str, after: u64, times: u64) -> FaultRule {
    FaultRule {
        op,
        path_contains: path.to_string(),
        after,
        times,
        errno_like: FaultKind::Io,
    }
}

#[test]
fn write_faults_reach_the_posix_caller_as_eio() {
    let (faulty, shim) = stack("eio");
    let fd = shim
        .open("/plfs/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    shim.write(fd, b"ok before fault").unwrap();
    faulty.arm(rule(FaultOp::Write, "dropping.data", 0, u64::MAX));
    let err = shim.write(fd, b"this fails").unwrap_err();
    assert_eq!(err, Errno::EIO, "EIO surfaces at the POSIX boundary");
    // Metadata ops unaffected by the data-path fault.
    assert!(shim.stat("/plfs/f").is_ok());
}

#[test]
fn transient_fault_heals_without_reopen() {
    let (faulty, shim) = stack("transient");
    let fd = shim
        .open("/plfs/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
        .unwrap();
    shim.write(fd, b"0123456789").unwrap();
    faulty.arm(rule(FaultOp::Read, "dropping.data", 0, 2));
    let mut buf = [0u8; 10];
    assert!(shim.pread(fd, &mut buf, 0).is_err());
    assert!(shim.pread(fd, &mut buf, 0).is_err());
    // Third attempt: the storage has "recovered"; same fd keeps working.
    assert_eq!(shim.pread(fd, &mut buf, 0).unwrap(), 10);
    assert_eq!(&buf, b"0123456789");
    shim.close(fd).unwrap();
}

#[test]
fn open_fault_leaves_no_half_container() {
    let (faulty, shim) = stack("halfopen");
    // Fail the openhosts mkdir during container creation.
    faulty.arm(FaultRule {
        op: FaultOp::Mkdir,
        path_contains: "openhosts".to_string(),
        after: 0,
        times: 1,
        errno_like: FaultKind::NoSpace,
    });
    let r = shim.open("/plfs/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644);
    assert!(r.is_err());
    // The half-created container is detectable and repair makes the path
    // reusable: a later create succeeds once storage recovers.
    let fd = shim
        .open("/plfs/g", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    shim.write(fd, b"fine").unwrap();
    shim.close(fd).unwrap();
    assert_eq!(shim.stat("/plfs/g").unwrap().size, 4);
}

#[test]
fn torn_index_detected_then_repaired_through_tools() {
    let (faulty, shim) = stack("repairflow");
    let fd = shim
        .open("/plfs/ckpt", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    shim.write(fd, &[0xCD; 4096]).unwrap();
    shim.close(fd).unwrap();

    // Simulate a crash tearing the index mid-append.
    let backing: &dyn plfs::Backing = {
        // The Faulty wraps the MemBacking; go through it directly.
        faulty.as_ref()
    };
    let droppings = plfs::container::list_droppings(backing, "/ckpt").unwrap();
    let ip = droppings[0].index_path.clone().unwrap();
    let f = backing.open(&ip, true).unwrap();
    f.append(&[0xEE; 13]).unwrap();
    drop(f);

    let report = plfs::check(backing, "/ckpt").unwrap();
    assert!(!report.is_clean());
    let rep = plfs::repair(backing, "/ckpt", true).unwrap();
    assert_eq!(rep.indices_truncated, 1);

    // Post-repair, the shim reads the full checkpoint again.
    let fd = shim.open("/plfs/ckpt", OpenFlags::RDONLY, 0).unwrap();
    let mut buf = vec![0u8; 4096];
    assert_eq!(shim.pread(fd, &mut buf, 0).unwrap(), 4096);
    assert!(buf.iter().all(|&b| b == 0xCD));
    shim.close(fd).unwrap();
}

#[test]
fn enospc_during_checkpoint_reported_not_swallowed() {
    let (faulty, shim) = stack("enospc");
    let fd = shim
        .open("/plfs/big", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    // Storage fills after 3 successful data writes.
    faulty.arm(FaultRule {
        op: FaultOp::Write,
        path_contains: "dropping.data".to_string(),
        after: 3,
        times: u64::MAX,
        errno_like: FaultKind::NoSpace,
    });
    let chunk = [1u8; 1024];
    let mut written = 0usize;
    let mut failed_errno = None;
    for _ in 0..10 {
        match shim.write(fd, &chunk) {
            Ok(n) => written += n,
            Err(e) => {
                failed_errno = Some(e);
                break;
            }
        }
    }
    assert_eq!(written, 3 * 1024, "exactly the writes that fit");
    assert_eq!(failed_errno, Some(Errno(28)), "ENOSPC propagated verbatim");
}
