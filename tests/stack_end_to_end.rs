//! Integration: the full real-execution stack, wired the way a user would.
//!
//! plfsrc text → backing directories on the real file system → PLFS →
//! LDPLFS shim → unmodified tools. Spans the `plfs`, `ldplfs` and `apps`
//! crates.

use apps::md5::hex;
use apps::unix_tools::{cat, cp, file_size, grep, md5sum};
use ldplfs::{from_plfsrc, CFile, OpenFlags, PosixLayer, RealPosix, Whence};
use plfs::RealBacking;
use std::sync::Arc;

fn stack(tag: &str) -> (Arc<dyn PosixLayer>, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("ldplfs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let under = Arc::new(RealPosix::rooted(root.join("fs")).unwrap());
    let backend = root.join("backend");
    let rc = "mount_point /plfs\nbackends /be\nnum_hostdirs 8\n";
    let backend2 = backend.clone();
    let shim = from_plfsrc(under, rc, move |_| {
        Arc::new(RealBacking::new(backend2.clone()).unwrap())
    })
    .unwrap();
    (Arc::new(shim), root)
}

#[test]
fn plfsrc_configured_stack_round_trips() {
    let (shim, root) = stack("rc");
    let fd = shim
        .open("/plfs/data", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
        .unwrap();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut written = 0;
    while written < payload.len() {
        written += shim.write(fd, &payload[written..]).unwrap();
    }
    shim.lseek(fd, 0, Whence::Set).unwrap();
    let mut back = vec![0u8; payload.len()];
    let mut read = 0;
    while read < back.len() {
        let n = shim.read(fd, &mut back[read..]).unwrap();
        assert!(n > 0);
        read += n;
    }
    shim.close(fd).unwrap();
    assert_eq!(back, payload);

    // The backend really holds a container (visible on the host FS).
    assert!(root.join("backend/data/.plfsaccess").exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unix_tools_work_across_layouts() {
    let (shim, root) = stack("tools");
    // Write the same lines to a container and a plain file through stdio.
    let lines: String = (0..2000)
        .map(|i| format!("line {i} {}\n", if i % 37 == 0 { "MATCH" } else { "noise" }))
        .collect();
    for path in ["/plfs/log.txt", "/plain-log.txt"] {
        let mut f = CFile::open(shim.clone(), path, "w").unwrap();
        f.write(lines.as_bytes()).unwrap();
        f.close().unwrap();
    }

    assert_eq!(
        cat(&shim, "/plfs/log.txt").unwrap(),
        cat(&shim, "/plain-log.txt").unwrap()
    );
    assert_eq!(
        grep(&shim, b"MATCH", "/plfs/log.txt").unwrap(),
        grep(&shim, b"MATCH", "/plain-log.txt").unwrap()
    );
    assert_eq!(grep(&shim, b"MATCH", "/plfs/log.txt").unwrap(), 55);
    assert_eq!(
        hex(&md5sum(&shim, "/plfs/log.txt").unwrap()),
        hex(&md5sum(&shim, "/plain-log.txt").unwrap())
    );
    assert_eq!(
        file_size(&shim, "/plfs/log.txt").unwrap(),
        lines.len() as u64
    );

    // cp out of the mount and back in, digest-stable.
    cp(&shim, "/plfs/log.txt", "/copied.txt").unwrap();
    cp(&shim, "/copied.txt", "/plfs/copied-back.txt").unwrap();
    assert_eq!(
        hex(&md5sum(&shim, "/plfs/copied-back.txt").unwrap()),
        hex(&md5sum(&shim, "/plain-log.txt").unwrap())
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn flatten_extracts_container_without_fuse() {
    let (shim, root) = stack("flatten");
    let data: Vec<u8> = (0..50_000u32).map(|i| (i * 7 % 256) as u8).collect();
    let mut f = CFile::open(shim.clone(), "/plfs/dump", "w").unwrap();
    f.write(&data).unwrap();
    f.close().unwrap();

    // Raw-data extraction via the library (the paper's "get data out of
    // PLFS structures" use case).
    let backing = RealBacking::new(root.join("backend")).unwrap();
    let flat = plfs::flatten::flatten_to_vec(&backing, "/dump").unwrap();
    assert_eq!(flat, data);

    // And the logical→physical map names real dropping files.
    let map = plfs::flatten::map(&backing, "/dump").unwrap();
    assert!(!map.is_empty());
    for e in &map {
        assert!(e.dropping.contains("dropping.data."));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interception_counters_see_both_sides() {
    // Stats live on the concrete shim type; build one directly.
    let (_unused, root) = stack("stats");
    let under = Arc::new(RealPosix::rooted(root.join("fs2")).unwrap());
    let backing = Arc::new(plfs::MemBacking::new());
    let shim = ldplfs::LdPlfsBuilder::new(under)
        .mount("/plfs", plfs::Plfs::new(backing))
        .build()
        .unwrap();
    let fd1 = shim
        .open("/plfs/a", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    let fd2 = shim
        .open("/outside", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
        .unwrap();
    shim.write(fd1, b"x").unwrap();
    shim.write(fd2, b"y").unwrap();
    shim.close(fd1).unwrap();
    shim.close(fd2).unwrap();
    use ldplfs::OpClass;
    assert_eq!(shim.stats().intercepted(OpClass::Open), 1);
    assert_eq!(shim.stats().passthrough(OpClass::Open), 1);
    assert_eq!(shim.stats().intercepted(OpClass::Write), 1);
    assert_eq!(shim.stats().passthrough(OpClass::Write), 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hdf5lite_checkpoint_through_the_stack() {
    let (shim, root) = stack("h5l");
    use apps::hdf5lite::{pack_f64, read, write, Dataset, Dtype};
    let dens = pack_f64(&(0..4096).map(|i| i as f64).collect::<Vec<_>>());
    write(
        &shim,
        "/plfs/chk",
        &[Dataset {
            name: "dens",
            dtype: Dtype::F64,
            data: &dens,
        }],
    )
    .unwrap();
    let back = read(&shim, "/plfs/chk").unwrap();
    assert_eq!(back[0].data, dens);
    let _ = std::fs::remove_dir_all(&root);
}
