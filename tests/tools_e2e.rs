//! Integration: `plfs-tools` maintenance commands against containers
//! produced by the real shim on a real backend directory — the full
//! operator workflow (write through LDPLFS, inspect/repair with the tools).

use ldplfs::{CFile, LdPlfsBuilder, PosixLayer, RealPosix};
use plfs::{Plfs, RealBacking};
use std::sync::Arc;

fn stack(tag: &str) -> (Arc<dyn PosixLayer>, RealBacking, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("ldplfs-toolse2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let under = Arc::new(RealPosix::rooted(root.join("fs")).unwrap());
    let backend_dir = root.join("backend");
    let backing = Arc::new(RealBacking::new(&backend_dir).unwrap());
    let shim: Arc<dyn PosixLayer> = Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(backing))
            .build()
            .unwrap(),
    );
    let tool_backing = RealBacking::new(&backend_dir).unwrap();
    (shim, tool_backing, root)
}

fn write_via_shim(shim: &Arc<dyn PosixLayer>, path: &str, data: &[u8]) {
    let mut f = CFile::open(shim.clone(), path, "w").unwrap();
    f.write(data).unwrap();
    f.close().unwrap();
}

#[test]
fn stat_map_flatten_on_shim_written_container() {
    let (shim, backing, root) = stack("smf");
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();
    write_via_shim(&shim, "/plfs/ckpt", &data);

    let stat = plfs_tools::stat(&backing, "/ckpt").unwrap();
    assert!(stat.contains("logical size:   60000 bytes"), "{stat}");

    let map = plfs_tools::map(&backing, "/ckpt").unwrap();
    assert!(map.contains("dropping.data."), "{map}");

    let out = plfs_tools::flatten(&backing, "/ckpt", "/extracted").unwrap();
    assert!(out.contains("wrote 60000 bytes"));
    // The flat file is a plain host file with identical bytes.
    let host = root.join("backend/extracted");
    assert_eq!(std::fs::read(&host).unwrap(), data);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn check_repair_cycle_on_real_backend() {
    let (shim, backing, root) = stack("repair");
    write_via_shim(&shim, "/plfs/f", &vec![9u8; 10_000]);
    assert!(plfs_tools::check(&backing, "/f").unwrap().contains("clean"));

    // Crash-tear the index on the host file system directly.
    let container = root.join("backend/f");
    let hostdir = std::fs::read_dir(&container)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("hostdir."))
        .expect("hostdir");
    let index = std::fs::read_dir(hostdir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with("dropping.index.")
        })
        .expect("index dropping");
    use std::io::Write;
    let mut fh = std::fs::OpenOptions::new()
        .append(true)
        .open(index.path())
        .unwrap();
    fh.write_all(&[0xBA; 7]).unwrap();
    drop(fh);

    let report = plfs_tools::check(&backing, "/f").unwrap();
    assert!(report.contains("torn index"), "{report}");
    let repair = plfs_tools::repair(&backing, "/f", true).unwrap();
    assert!(repair.contains("indices truncated:      1"), "{repair}");
    assert!(plfs_tools::check(&backing, "/f").unwrap().contains("clean"));

    // And the shim still reads the full data afterwards.
    let mut f = CFile::open(shim.clone(), "/plfs/f", "r").unwrap();
    let mut buf = vec![0u8; 10_000];
    let mut got = 0;
    while got < buf.len() {
        let n = f.read(&mut buf[got..]).unwrap();
        if n == 0 {
            break;
        }
        got += n;
    }
    assert_eq!(got, 10_000);
    assert!(buf.iter().all(|&b| b == 9));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn ls_and_version_and_rm() {
    let (shim, backing, root) = stack("lsrm");
    write_via_shim(&shim, "/plfs/a", b"aaa");
    write_via_shim(&shim, "/plfs/b", b"bbbbbb");
    let ls = plfs_tools::ls(&backing, "/").unwrap();
    assert!(ls.contains("container"), "{ls}");
    assert!(ls.contains(" a"), "{ls}");
    assert!(ls.contains(" b"), "{ls}");

    let ver = plfs_tools::version(&backing, "/a").unwrap();
    assert!(ver.contains("plfs-container v1"));

    plfs_tools::rm(&backing, "/a").unwrap();
    assert!(plfs_tools::stat(&backing, "/a").is_err());
    // /b untouched.
    assert!(plfs_tools::stat(&backing, "/b")
        .unwrap()
        .contains("6 bytes"));
    let _ = std::fs::remove_dir_all(&root);
}
