//! Integration: thread-parallel reads through the parallel PLFS read path.
//!
//! Counterpart to `concurrent_writers.rs`: a many-dropping container is
//! written once, then hammered by N OS threads issuing random preads
//! through one shared `ReadFile`, under the sharded handle cache and the
//! fan-out configurations. Every read must be byte-identical to the
//! serially-built reference, whatever interleaving the scheduler picks.

use plfs::{
    Backing, BlockCache, CacheConf, ContainerParams, LayoutMode, MemBacking, OpenFlags, Plfs,
    ReadConf, ReadFile,
};
use std::sync::Arc;

/// Write a strided N-writer pattern and return the expected logical bytes.
/// `writers` pids produce `writers` data droppings (one stream each).
fn build_container(
    backing: &Arc<MemBacking>,
    writers: usize,
    rows: usize,
    block: usize,
) -> Vec<u8> {
    let plfs = Plfs::new(backing.clone()).with_params(ContainerParams {
        num_hostdirs: 4,
        mode: LayoutMode::Both,
    });
    let fd = plfs
        .open("/shared", OpenFlags::RDWR | OpenFlags::CREAT, 0)
        .unwrap();
    let mut want = vec![0u8; writers * rows * block];
    for r in 0..writers {
        fd.add_ref(r as u64);
        let fill = (r as u8).wrapping_mul(37).wrapping_add(1);
        let data = vec![fill; block];
        for row in 0..rows {
            let off = (row * writers + r) * block;
            plfs.write(&fd, &data, off as u64, r as u64).unwrap();
            want[off..off + block].fill(fill);
        }
    }
    for r in 0..writers {
        let _ = plfs.close(&fd, r as u64);
    }
    plfs.close(&fd, 0).unwrap();
    want
}

/// Tiny deterministic PRNG so each thread gets a reproducible but distinct
/// offset/length sequence.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// N threads share one `ReadFile` and issue random preads through
/// `pread_auto`; each result must match the reference slice exactly.
fn hammer(rf: &ReadFile, b: &dyn Backing, want: &[u8], threads: usize, reads_per_thread: usize) {
    crossbeam::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move |_| {
                let mut rng = 0x9E3779B97F4A7C15u64.wrapping_add(t as u64);
                for _ in 0..reads_per_thread {
                    let off = (xorshift(&mut rng) % (want.len() as u64 + 512)) as usize;
                    let len = 1 + (xorshift(&mut rng) % (64 * 1024)) as usize;
                    let mut buf = vec![0xA5u8; len];
                    let n = rf.pread_auto(b, &mut buf, off as u64).unwrap();
                    let expect: &[u8] = if off < want.len() {
                        &want[off..(off + len).min(want.len())]
                    } else {
                        &[]
                    };
                    assert_eq!(n, expect.len(), "pread length at off={off} len={len}");
                    assert_eq!(&buf[..n], expect, "pread bytes at off={off} len={len}");
                }
            });
        }
    })
    .expect("reader thread panicked");
}

#[test]
fn random_preads_match_serial_under_sharded_cache() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 8, 16, 4096);
    // Parallel merge on open, default 16-way sharded cache, fan-out enabled
    // for anything over 8 KiB so most random reads exercise both paths.
    let conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    }
    .with_fanout_threshold(8 * 1024);
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", conf).unwrap();
    assert!(rf.merged_parallel());
    assert_eq!(
        rf.read_all(backing.as_ref()).unwrap(),
        want,
        "parallel open must reconstruct the file before we stress it"
    );
    hammer(&rf, backing.as_ref(), &want, 8, 64);
}

#[test]
fn fanout_reads_match_with_tiny_threshold() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 6, 8, 1024);
    // Threshold of 1 byte: every pread (that resolves to 2+ slices) takes
    // the fan-out path, so worker threads race on the handle cache hard.
    let conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    }
    .with_fanout_threshold(1);
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", conf).unwrap();
    hammer(&rf, backing.as_ref(), &want, 6, 48);
}

#[test]
fn single_shard_cache_is_still_correct_under_contention() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 8, 8, 512);
    // One shard = one global lock: maximum contention, same answers.
    let conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    }
    .with_handle_shards(1)
    .with_fanout_threshold(256);
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", conf).unwrap();
    hammer(&rf, backing.as_ref(), &want, 8, 32);
}

#[test]
fn cached_preads_match_under_thread_contention() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 8, 16, 4096);
    // Block cache with a budget far below the file size: threads race on
    // the shard locks while LRU eviction churns, and every read must
    // still be byte-identical to the reference.
    let conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    }
    .with_fanout_threshold(8 * 1024);
    let cache = Arc::new(BlockCache::new(
        CacheConf::sized(64 * 1024)
            .with_block_bytes(4096)
            .with_shards(4),
    ));
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", conf)
        .unwrap()
        .with_cache(Arc::clone(&cache));
    hammer(&rf, backing.as_ref(), &want, 8, 64);
    let stats = cache.stats();
    assert!(stats.hits > 0, "contended hammer never hit the cache");
    assert!(stats.evictions > 0, "undersized cache never evicted");
}

#[test]
fn concurrent_prefetch_and_preads_agree() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 6, 8, 1024);
    let conf = ReadConf {
        threads: 4,
        parallel_merge_min_droppings: 1,
        ..ReadConf::default()
    }
    .with_fanout_threshold(1);
    let cache = Arc::new(BlockCache::new(
        CacheConf::sized(1 << 20).with_block_bytes(512),
    ));
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", conf)
        .unwrap()
        .with_cache(cache);
    // Half the threads prefetch sliding windows (the readahead path),
    // half issue demand preads over the same ranges, racing on the same
    // cache blocks.
    crossbeam::scope(|scope| {
        for t in 0..4usize {
            let rf = &rf;
            let b = backing.as_ref();
            let want = &want[..];
            scope.spawn(move |_| {
                let mut rng = 0xDEADBEEFu64.wrapping_add(t as u64);
                for _ in 0..48 {
                    let off = xorshift(&mut rng) % (want.len() as u64 + 512);
                    let len = 1 + (xorshift(&mut rng) % 8192) as usize;
                    if t % 2 == 0 {
                        rf.prefetch(b, off, len).unwrap();
                    } else {
                        let mut buf = vec![0xA5u8; len];
                        let n = rf.pread_auto(b, &mut buf, off).unwrap();
                        let expect: &[u8] = if (off as usize) < want.len() {
                            &want[off as usize..(off as usize + len).min(want.len())]
                        } else {
                            &[]
                        };
                        assert_eq!(n, expect.len());
                        assert_eq!(&buf[..n], expect, "prefetch race corrupted a read");
                    }
                }
            });
        }
    })
    .expect("prefetch/read thread panicked");
    // Full verification pass after the races settle.
    assert_eq!(rf.read_all(backing.as_ref()).unwrap(), want);
}

#[test]
fn serial_conf_is_unaffected_by_concurrent_callers() {
    let backing = Arc::new(MemBacking::new());
    let want = build_container(&backing, 4, 8, 1024);
    // threads=1 disables both the parallel merge and the fan-out; many
    // threads sharing the serial reader must still read true bytes.
    let rf = ReadFile::open_with(backing.as_ref(), "/shared", ReadConf::serial()).unwrap();
    assert!(!rf.merged_parallel());
    hammer(&rf, backing.as_ref(), &want, 8, 32);
}
