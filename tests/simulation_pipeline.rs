//! Integration: the simulation pipeline reproduces the paper's qualitative
//! claims end-to-end (apps → mpiio → simfs), at reduced volumes.
//!
//! Each test encodes one sentence of the paper's evaluation as an
//! assertion. These are the claims EXPERIMENTS.md reports against.

use apps::flash_io::{self, FlashConfig};
use apps::mpi_io_test::{self, MpiIoTestConfig, Phase};
use apps::nas_bt::{self, BtClass, BtConfig};
use mpiio::Method;
use simfs::presets;

fn fig3_point(nodes: usize, ppn: usize, method: Method, phase: Phase) -> f64 {
    let mut cfg = MpiIoTestConfig::paper(nodes, ppn);
    cfg.bytes_per_proc = 64 << 20; // reduced volume, same pattern
    mpi_io_test::run(&presets::minerva(), &cfg, method, phase)
        .unwrap()
        .bandwidth_mbs()
}

#[test]
fn ldplfs_tracks_romio_within_ten_percent() {
    // "performance that is near identical to the PLFS ROMIO driver"
    for nodes in [2usize, 8, 32] {
        let ldplfs = fig3_point(nodes, 2, Method::Ldplfs, Phase::Write);
        let romio = fig3_point(nodes, 2, Method::Romio, Phase::Write);
        let ratio = ldplfs / romio;
        assert!(
            (0.9..1.1).contains(&ratio),
            "{nodes} nodes: LDPLFS/ROMIO = {ratio}"
        );
    }
}

#[test]
fn ldplfs_beats_fuse_substantially() {
    // "significantly better than FUSE (up to 2x) in almost all cases"
    for nodes in [4usize, 16] {
        let ldplfs = fig3_point(nodes, 1, Method::Ldplfs, Phase::Write);
        let fuse = fig3_point(nodes, 1, Method::Fuse, Phase::Write);
        assert!(
            ldplfs > fuse * 1.5,
            "{nodes} nodes: LDPLFS {ldplfs} vs FUSE {fuse}"
        );
    }
}

#[test]
fn fuse_below_plain_mpiio_for_writes() {
    // "FUSE performs worse than standard MPI-IO by 20% on average for
    // parallel writes" (Minerva)
    let mut fuse_sum = 0.0;
    let mut mpiio_sum = 0.0;
    for nodes in [4usize, 16, 64] {
        fuse_sum += fig3_point(nodes, 1, Method::Fuse, Phase::Write);
        mpiio_sum += fig3_point(nodes, 1, Method::MpiIo, Phase::Write);
    }
    assert!(
        fuse_sum < mpiio_sum,
        "FUSE should average below MPI-IO: {fuse_sum} vs {mpiio_sum}"
    );
}

#[test]
fn plfs_roughly_doubles_mpiio_on_minerva() {
    // "the performance of PLFS on Minerva is approximately 2x greater than
    // that of MPI-IO without PLFS in parallel"
    let ldplfs = fig3_point(32, 1, Method::Ldplfs, Phase::Write);
    let mpiio = fig3_point(32, 1, Method::MpiIo, Phase::Write);
    let ratio = ldplfs / mpiio;
    assert!(
        (1.5..4.0).contains(&ratio),
        "expected ~2x, got {ratio} ({ldplfs} vs {mpiio})"
    );
}

#[test]
fn node_wise_performance_consistent_across_ppn() {
    // "The node-wise performance should remain largely consistent, while
    // the number of processors per node is varied" (collective buffering,
    // one aggregator per node)
    for method in [Method::MpiIo, Method::Ldplfs] {
        let one = fig3_point(8, 1, method, Phase::Write);
        let four = fig3_point(8, 4, method, Phase::Write);
        let ratio = four / one;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{}: 4ppn/1ppn = {ratio}",
            method.label()
        );
    }
}

#[test]
fn bt_class_c_plfs_advantage_grows_with_scale() {
    // Figure 4a: the PLFS advantage over MPI-IO widens as per-process
    // writes shrink into the client cache.
    let p = presets::sierra();
    let small = {
        let cfg = BtConfig::paper(BtClass::C, 16);
        nas_bt::run(&p, &cfg, Method::Ldplfs)
            .unwrap()
            .bandwidth_mbs()
            / nas_bt::run(&p, &cfg, Method::MpiIo)
                .unwrap()
                .bandwidth_mbs()
    };
    let large = {
        let cfg = BtConfig::paper(BtClass::C, 256);
        nas_bt::run(&p, &cfg, Method::Ldplfs)
            .unwrap()
            .bandwidth_mbs()
            / nas_bt::run(&p, &cfg, Method::MpiIo)
                .unwrap()
                .bandwidth_mbs()
    };
    assert!(
        large > small,
        "advantage should grow with scale: {small} -> {large}"
    );
    assert!(
        large > 2.0,
        "PLFS should be well ahead at 256 cores: {large}"
    );
}

#[test]
fn bt_class_d_cache_recovery_at_scale() {
    // Figure 4b: "when using 4,096 cores ... the write caching effects
    // reappear": per-process writes drop under the cache threshold and
    // PLFS bandwidth jumps well past the write-through plateau.
    let p = presets::sierra();
    let plateau = nas_bt::run(&p, &BtConfig::paper(BtClass::D, 1024), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    let recovered = nas_bt::run(&p, &BtConfig::paper(BtClass::D, 4096), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    assert!(
        recovered > plateau * 2.0,
        "expected cache recovery: {plateau} -> {recovered}"
    );
}

#[test]
fn flash_collapses_at_scale_on_lustre_but_not_gpfs() {
    // Figure 5 + §IV: the dedicated MDS is the bottleneck; "On a file
    // system like GPFS, where metadata is distributed, these performance
    // decreases may not materialise."
    let sierra = presets::sierra();
    let peak = flash_io::run(&sierra, &FlashConfig::paper(192), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    let collapsed = flash_io::run(&sierra, &FlashConfig::paper(3072), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    let mpiio_at_scale = flash_io::run(&sierra, &FlashConfig::paper(3072), Method::MpiIo)
        .unwrap()
        .bandwidth_mbs();
    assert!(peak > 4.0 * collapsed, "collapse: {peak} -> {collapsed}");
    assert!(
        collapsed < mpiio_at_scale,
        "PLFS should fall below plain MPI-IO at scale: {collapsed} vs {mpiio_at_scale}"
    );

    // GPFS (Minerva) at its largest comparable scale: no collapse.
    let minerva = presets::minerva();
    let mid = flash_io::run(&minerva, &FlashConfig::paper(96), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    let big = flash_io::run(&minerva, &FlashConfig::paper(3072), Method::Ldplfs)
        .unwrap()
        .bandwidth_mbs();
    assert!(
        big > mid * 0.5,
        "distributed metadata should not collapse: {mid} -> {big}"
    );
}

#[test]
fn flash_peak_near_192_cores() {
    // Figure 5: "a sharp increase in write speed until 192 cores".
    let p = presets::sierra();
    let bw = |cores| {
        flash_io::run(&p, &FlashConfig::paper(cores), Method::Ldplfs)
            .unwrap()
            .bandwidth_mbs()
    };
    let at_12 = bw(12);
    let at_192 = bw(192);
    let at_3072 = bw(3072);
    assert!(at_192 > 2.0 * at_12, "sharp rise: {at_12} -> {at_192}");
    assert!(
        at_192 > 5.0 * at_3072,
        "then collapse: {at_192} -> {at_3072}"
    );
}

#[test]
fn read_phase_also_favors_plfs_on_minerva() {
    // §II: "an increased read bandwidth when the data is being read back
    // on the same number of nodes used to write the file".
    let plfs = fig3_point(32, 1, Method::Ldplfs, Phase::Read);
    let mpiio = fig3_point(32, 1, Method::MpiIo, Phase::Read);
    assert!(
        plfs > mpiio,
        "PLFS read should beat shared-file read: {plfs} vs {mpiio}"
    );
}
