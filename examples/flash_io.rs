//! FLASH-IO two ways: a *real* checkpoint through the LDPLFS shim, then the
//! paper's Figure 5 scaling study on the simulated Sierra platform.
//!
//! Part 1 exercises the actual stack end-to-end: an HDF5-like checkpoint
//! file is written through plain POSIX calls, lands in a PLFS container,
//! and is read back bit-identically — the "no application modification"
//! claim, demonstrated.
//!
//! Part 2 regenerates the paper's headline negative result: PLFS's
//! per-process dropping creates overwhelm a dedicated Lustre MDS at scale.
//!
//! ```sh
//! cargo run --release --example flash_io
//! ```

use apps::flash_io::{run, FlashConfig};
use apps::hdf5lite::{pack_f64, read, write, Dataset, Dtype};
use ldplfs::{LdPlfsBuilder, PosixLayer, RealPosix};
use mpiio::Method;
use plfs::{Plfs, RealBacking};
use simfs::presets;
use std::sync::Arc;

fn main() {
    real_checkpoint();
    scaling_study();
}

/// Part 1: write and verify a real checkpoint through the shim.
fn real_checkpoint() {
    let root = std::env::temp_dir().join(format!("ldplfs-flash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let under = Arc::new(RealPosix::rooted(root.join("fs")).unwrap());
    let backing = Arc::new(RealBacking::new(root.join("backend")).unwrap());
    let shim: Arc<dyn PosixLayer> = Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(backing))
            .build()
            .unwrap(),
    );

    // A miniature FLASH block: 8^3 cells, four unknowns.
    let nxb = 8usize;
    let cells = nxb * nxb * nxb;
    let vars = ["dens", "pres", "temp", "ener"];
    let data: Vec<Vec<u8>> = vars
        .iter()
        .enumerate()
        .map(|(v, _)| {
            pack_f64(
                &(0..cells)
                    .map(|i| (v * cells + i) as f64 * 0.25)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let datasets: Vec<Dataset<'_>> = vars
        .iter()
        .zip(&data)
        .map(|(name, d)| Dataset {
            name,
            dtype: Dtype::F64,
            data: d,
        })
        .collect();

    write(&shim, "/plfs/flash_hdf5_chk_0001", &datasets).unwrap();
    let back = read(&shim, "/plfs/flash_hdf5_chk_0001").unwrap();
    assert_eq!(back.len(), vars.len());
    for (ds, orig) in back.iter().zip(&data) {
        assert_eq!(&ds.data, orig, "dataset {} must round-trip", ds.name);
    }
    println!(
        "part 1: checkpoint of {} datasets ({} bytes) round-tripped through a \
         PLFS container via the shim ✓\n",
        back.len(),
        back.iter().map(|d| d.data.len()).sum::<usize>()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Part 2: the Figure 5 sweep.
fn scaling_study() {
    let platform = presets::sierra();
    println!(
        "part 2: FLASH-IO weak scaling on simulated {} (Figure 5)",
        platform.fs.name
    );
    println!(
        "{:>8}{:>8}{:>12}{:>12}{:>12}",
        "Cores", "Nodes", "MPI-IO", "ROMIO", "LDPLFS"
    );
    for &cores in FlashConfig::core_sweep() {
        let cfg = FlashConfig::paper(cores);
        let mut row = format!("{:>8}{:>8}", cores, cfg.nodes());
        for method in [Method::MpiIo, Method::Romio, Method::Ldplfs] {
            let b = run(&platform, &cfg, method).expect("flash run");
            row.push_str(&format!("{:>12.1}", b.bandwidth_mbs()));
        }
        println!("{row}");
    }
    println!(
        "\n(paper: PLFS peaks ~1,650 MB/s near 192 cores, then the dedicated\n\
         MDS buckles under per-process dropping creates: ~210 MB/s at 3,072)"
    );
}
