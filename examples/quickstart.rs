//! Quickstart: transparent PLFS through LDPLFS in five minutes.
//!
//! Builds the paper's whole stack on a temp directory: a PLFS file system
//! over a real backing store, the LDPLFS shim over it, then an unmodified
//! "application" doing plain POSIX I/O that lands in a container.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ldplfs::{LdPlfsBuilder, OpenFlags, PosixLayer, RealPosix, Whence};
use plfs::{Plfs, RealBacking};
use std::sync::Arc;

fn main() {
    let root = std::env::temp_dir().join(format!("ldplfs-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // 1. The "system": a real POSIX layer (libc stand-in) and a PLFS
    //    backing directory, as a plfsrc would configure.
    let under = Arc::new(RealPosix::rooted(root.join("fs")).unwrap());
    let backing = Arc::new(RealBacking::new(root.join("plfs_backend")).unwrap());

    // 2. Export "LD_PRELOAD": build the shim with a /plfs mount.
    let shim = LdPlfsBuilder::new(under)
        .mount("/plfs", Plfs::new(backing.clone()))
        .build()
        .unwrap();

    // 3. An unmodified application: ordinary open/write/lseek/read/close.
    let fd = shim
        .open(
            "/plfs/checkpoint.dat",
            OpenFlags::RDWR | OpenFlags::CREAT,
            0o644,
        )
        .unwrap();
    let payload = b"simulation state at t=42";
    shim.write(fd, payload).unwrap();
    shim.lseek(fd, 0, Whence::Set).unwrap();
    let mut buf = vec![0u8; payload.len()];
    shim.read(fd, &mut buf).unwrap();
    assert_eq!(&buf, payload);
    shim.close(fd).unwrap();

    println!("wrote and re-read {} bytes through the shim", payload.len());
    println!(
        "intercepted {} calls, passed {} through",
        shim.stats().total_intercepted(),
        shim.stats().total_passthrough()
    );

    // 4. Proof it's a container, not a flat file: inspect the backend.
    println!("\nbackend layout under {:?}:", backing.root());
    print_tree(backing.root(), 1);

    // 5. And the flatten utility recovers the raw bytes without FUSE.
    let flat = plfs::flatten::flatten_to_vec(backing.as_ref(), "/checkpoint.dat").unwrap();
    assert_eq!(flat, payload);
    println!("\nflatten(checkpoint.dat) == original payload ✓");

    let _ = std::fs::remove_dir_all(&root);
}

fn print_tree(dir: &std::path::Path, depth: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut names: Vec<_> = entries.filter_map(|e| e.ok()).collect();
    names.sort_by_key(|e| e.file_name());
    for e in names {
        println!("{}{}", "  ".repeat(depth), e.file_name().to_string_lossy());
        if e.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            print_tree(&e.path(), depth + 1);
        }
    }
}
