#!/bin/sh
# The paper's headline demo, live: standard UNIX tools operating on a PLFS
# container through LD_PRELOAD — no FUSE, no MPI rebuild, no recompilation.
#
#   sh examples/preload_demo.sh
set -eu

ROOT=$(mktemp -d /tmp/ldplfs-demo-XXXXXX)
export LDPLFS_MOUNT="$ROOT/plfs"
export LDPLFS_BACKEND="$ROOT/backend"
mkdir -p "$LDPLFS_BACKEND"

echo "== building the preload library =="
cargo build --release -p ldplfs-preload >/dev/null
LIB="$(dirname "$0")/../target/release/libldplfs_preload.so"
[ -f "$LIB" ] || { echo "missing $LIB"; exit 1; }

run() {
    LD_PRELOAD="$LIB" "$@"
}

echo "== writing 1 MiB into $LDPLFS_MOUNT/demo.bin via dd =="
run dd if=/dev/urandom of="$LDPLFS_MOUNT/demo.bin" bs=65536 count=16 status=none

echo "== the backend shows a container, not a flat file =="
find "$LDPLFS_BACKEND" | sed "s|$LDPLFS_BACKEND|  backend|" | sort | head -12

echo "== unmodified tools on the container =="
run md5sum "$LDPLFS_MOUNT/demo.bin"
run cp "$LDPLFS_MOUNT/demo.bin" "$ROOT/extracted.bin"
md5sum "$ROOT/extracted.bin"
echo "   (digests above must match)"

SZ=$(run cat "$LDPLFS_MOUNT/demo.bin" | wc -c)
echo "== cat streamed $SZ bytes =="

run rm -f "$LDPLFS_MOUNT/demo.bin" 2>/dev/null || true
echo "== done; cleaning up $ROOT =="
rm -rf "$ROOT"
