//! The NAS BT I/O experiment (paper Figure 4) as a runnable example.
//!
//! Sweeps BT problem classes C and D over the paper's core counts on the
//! simulated Sierra/Lustre platform, comparing plain MPI-IO against PLFS
//! through ROMIO and through LDPLFS.
//!
//! ```sh
//! cargo run --release --example bt_io            # both classes
//! cargo run --release --example bt_io -- C       # one class
//! ```

use apps::nas_bt::{run, BtClass, BtConfig};
use mpiio::Method;
use simfs::presets;

fn main() {
    let arg = std::env::args().nth(1);
    let classes: Vec<BtClass> = match arg.as_deref() {
        Some("C") | Some("c") => vec![BtClass::C],
        Some("D") | Some("d") => vec![BtClass::D],
        None => vec![BtClass::C, BtClass::D],
        Some(other) => {
            eprintln!("unknown class {other}; use C or D");
            std::process::exit(2);
        }
    };

    let platform = presets::sierra();
    println!(
        "BT I/O on simulated {} ({} OSS, dedicated MDS)\n",
        platform.fs.name, platform.fs.servers
    );

    for class in classes {
        println!(
            "== class {} ({} GB over {} write steps, strong scaled) ==",
            class.label(),
            class.total_bytes() as f64 / 1e9,
            apps::nas_bt::BT_WRITE_STEPS,
        );
        println!(
            "{:>8}{:>14}{:>12}{:>12}{:>12}",
            "Cores", "KB/proc/step", "MPI-IO", "ROMIO", "LDPLFS"
        );
        for &cores in class.core_sweep() {
            let cfg = BtConfig::paper(class, cores);
            let mut row = format!(
                "{:>8}{:>14.0}",
                cores,
                cfg.bytes_per_proc_step() as f64 / 1e3
            );
            for method in [Method::MpiIo, Method::Romio, Method::Ldplfs] {
                let b = run(&platform, &cfg, method).expect("bt run");
                row.push_str(&format!("{:>12.1}", b.bandwidth_mbs()));
            }
            println!("{row}");
        }
        println!(
            "\n(paper: PLFS far ahead where per-step writes fit the client cache;\n\
             class D dips when ~7 MB writes miss it, recovers at 4,096 cores)\n"
        );
    }
}
