//! The performance-model study the paper proposes as future work (§V.A):
//! "use our performance model to highlight systems where PLFS may have a
//! negative effect" — a crossover finder plus the hostdir-count knob it
//! suggests for "correcting the negative effects seen at scale".
//!
//! ```sh
//! cargo run --release --example scale_study
//! ```

use apps::flash_io::{run, FlashConfig};
use mpiio::Method;
use simfs::presets;

fn main() {
    // 1. Where does PLFS stop helping? Sweep FLASH-IO on both machines.
    for (platform, label) in [
        (presets::sierra(), "Sierra (Lustre, dedicated MDS)"),
        (presets::minerva(), "Minerva (GPFS, distributed metadata)"),
    ] {
        println!("== {label} ==");
        println!(
            "{:>8}{:>12}{:>12}{:>10}",
            "Cores", "MPI-IO", "LDPLFS", "speedup"
        );
        let mut harmful = None;
        for &cores in FlashConfig::core_sweep() {
            if cores > platform.cluster.nodes * platform.cluster.cores_per_node {
                break;
            }
            let cfg = FlashConfig::paper(cores);
            let base = run(&platform, &cfg, Method::MpiIo).unwrap();
            let plfs = run(&platform, &cfg, Method::Ldplfs).unwrap();
            let speedup = plfs.bandwidth_mbs() / base.bandwidth_mbs();
            println!(
                "{:>8}{:>12.1}{:>12.1}{:>9.2}x",
                cores,
                base.bandwidth_mbs(),
                plfs.bandwidth_mbs(),
                speedup
            );
            if harmful.is_none() && speedup < 1.0 {
                harmful = Some(cores);
            }
        }
        match harmful {
            Some(c) => println!("-> PLFS harmful from {c} cores on this platform\n"),
            None => println!("-> PLFS never harmful in the swept range\n"),
        }
    }

    // 2. Can more hostdirs tame the MDS storm? (The paper's proposed fix.)
    println!("== hostdir ablation: FLASH-IO at 3,072 cores on Sierra ==");
    println!("{:>10}{:>14}", "hostdirs", "LDPLFS MB/s");
    let platform = presets::sierra();
    for hostdirs in [1u32, 8, 32, 128, 512] {
        let mut cfg = FlashConfig::paper(3072);
        cfg.num_hostdirs = hostdirs;
        let b = run(&platform, &cfg, Method::Ldplfs).unwrap();
        println!("{:>10}{:>14.1}", hostdirs, b.bandwidth_mbs());
    }
    println!(
        "\n(hostdir spreading balances the *backend* directories; the paper's\n\
         collapse persists because the dedicated MDS itself is the choke point —\n\
         exactly why §V.A proposes exploring alternative container layouts)"
    );
}
