//! The Table II demonstration: standard UNIX tools on a PLFS container.
//!
//! Runs `cp`, `cat`, `grep` and `md5sum` (the crate's faithful
//! reimplementations over the POSIX layer) against the same data stored two
//! ways — a PLFS container reached through the LDPLFS shim, and a plain
//! file — timing both, exactly the §III.D experiment (at a reduced size so
//! it finishes promptly; pass a size in MiB as the first argument).
//!
//! ```sh
//! cargo run --release --example unix_tools -- 128
//! ```

use apps::md5::hex;
use apps::unix_tools::{cat, cp, grep, md5sum};
use ldplfs::{CFile, LdPlfsBuilder, PosixLayer, RealPosix};
use plfs::{Plfs, RealBacking};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let size = mib * (1 << 20);

    let root = std::env::temp_dir().join(format!("ldplfs-tools-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let under = Arc::new(RealPosix::rooted(root.join("fs")).unwrap());
    let backing = Arc::new(RealBacking::new(root.join("backend")).unwrap());
    let shim: Arc<dyn PosixLayer> = Arc::new(
        LdPlfsBuilder::new(under)
            .mount("/plfs", Plfs::new(backing))
            .build()
            .unwrap(),
    );

    // Build the input: pseudo-random printable lines with occasional
    // markers for grep, identical on both layouts.
    println!("generating {mib} MiB of line data on both layouts ...");
    let mut written = 0usize;
    let mut plfs_f = CFile::open(shim.clone(), "/plfs/data.txt", "w").unwrap();
    let mut flat_f = CFile::open(shim.clone(), "/data.txt", "w").unwrap();
    let mut rng: u64 = 0x1234_5678_9abc_def0;
    let mut line = String::new();
    while written < size {
        line.clear();
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let marker = if rng.is_multiple_of(97) {
            " NEEDLE"
        } else {
            ""
        };
        line.push_str(&format!("record {rng:016x} payload{marker}\n"));
        plfs_f.write(line.as_bytes()).unwrap();
        flat_f.write(line.as_bytes()).unwrap();
        written += line.len();
    }
    plfs_f.close().unwrap();
    flat_f.close().unwrap();

    let timed = |name: &str, f: &mut dyn FnMut(&str) -> String| {
        let t = Instant::now();
        let out_p = f("/plfs/data.txt");
        let t_plfs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let out_s = f("/data.txt");
        let t_std = t.elapsed().as_secs_f64();
        assert_eq!(out_p, out_s, "{name}: results must agree across layouts");
        println!("{name:<12}{t_plfs:>14.3}{t_std:>20.3}   ({out_p})");
    };

    println!("\n{:<12}{:>14}{:>20}", "", "PLFS (s)", "Standard (s)");
    timed("cp (read)", &mut |p| {
        cp(&shim, p, "/cp.out").unwrap().to_string()
    });
    timed("cat", &mut |p| cat(&shim, p).unwrap().to_string());
    timed("grep", &mut |p| {
        grep(&shim, b"NEEDLE", p).unwrap().to_string()
    });
    timed("md5sum", &mut |p| hex(&md5sum(&shim, p).unwrap()));

    println!("\n(paper Table II at 4 GB: times roughly equal, PLFS a touch faster on cp)");
    let _ = std::fs::remove_dir_all(&root);
}
