//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`scope`] with crossbeam's signature (spawn closures receive a
//! `&Scope` argument, `scope` returns `thread::Result`), implemented on top
//! of [`std::thread::scope`]. Only the subset this workspace uses.

/// Scoped-thread namespace mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle; wraps [`std::thread::Scope`].
    #[repr(transparent)]
    pub struct Scope<'scope, 'env: 'scope>(std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives this scope again so
        /// workers can spawn siblings, matching crossbeam's API.
        pub fn spawn<F, T>(&'scope self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.0.spawn(move || f(self))
        }
    }

    /// Create a scope: all threads spawned inside are joined before return.
    /// Returns `Err` with the first panic payload if any thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                // SAFETY: Scope is a repr(transparent) newtype over
                // std::thread::Scope, so the reference cast is sound.
                let wrapped: &Scope<'_, 'env> = unsafe {
                    &*(s as *const std::thread::Scope<'_, 'env>).cast::<Scope<'_, 'env>>()
                };
                f(wrapped)
            })
        }))
    }
}

pub use thread::{scope, Scope};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panic_in_worker_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
