//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros — over a simple
//! calibrated wall-clock loop. Results are printed as `ns/iter` (plus
//! MiB/s when a byte throughput is set); there is no statistical engine.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness context.
pub struct Criterion {
    filter: Option<String>,
    /// Wall-clock budget per benchmark measurement.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` passes `--bench`; any bare argument is a substring
        // filter on benchmark names, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let quick = std::env::var("CRITERION_QUICK").is_ok();
        Criterion {
            filter,
            measure_for: if quick {
                Duration::from_millis(30)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let per_iter = run_calibrated(self.parent.measure_for, &mut f);
        report(&full, per_iter, self.throughput);
        self
    }

    /// Run a benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing is immediate; kept for API compatibility).
    pub fn finish(self) {}
}

/// Calibrate an iteration count to the time budget, then measure.
fn run_calibrated<F: FnMut(&mut Bencher)>(budget: Duration, f: &mut F) -> f64 {
    // Warm-up / calibration: grow iters until the closure registers time.
    let mut iters = 1u64;
    let mut elapsed;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        elapsed = b.elapsed.max(Duration::from_nanos(1));
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    // Measurement: three samples at the budgeted size; keep the fastest
    // (least-noise) sample.
    let target_iters = ((budget.as_nanos() as f64 / per_iter).ceil() as u64).clamp(1, 1 << 32);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut b = Bencher {
            iters: target_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let sample = b.elapsed.as_nanos() as f64 / target_iters as f64;
        if sample < best {
            best = sample;
        }
    }
    best
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (1 << 20) as f64 / (ns_per_iter / 1e9);
            format!("  thrpt: {mib_s:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (ns_per_iter / 1e9);
            format!("  thrpt: {elem_s:.0} elem/s")
        }
        None => String::new(),
    };
    println!("{name:<48} time: {ns_per_iter:>12.1} ns/iter{rate}");
}

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        let mut count = 0u64;
        g.throughput(Throughput::Bytes(8));
        g.bench_function("incr", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
