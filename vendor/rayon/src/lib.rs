//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `par_iter().map(..).collect()` shape the workspace uses,
//! running closures on scoped OS threads with order-preserving collection.

/// Commonly-imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types with a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded.
    type Item: 'data;
    /// Borrow `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    /// Evaluate the map on worker threads, preserving input order.
    pub fn collect<B: FromIterator<R>>(self) -> B {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n);
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon worker panicked"));
            }
        });
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
