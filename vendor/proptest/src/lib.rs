//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! reimplements the subset of proptest the workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with ranges / tuples / `prop_map` /
//! collections / `prop_oneof!` / `any::<T>()` / [`Just`], and the
//! `prop_assert!` family. Inputs are generated from a deterministic
//! per-test seed (SplitMix64 over the test's module path), so failures
//! reproduce across runs. Shrinking is not implemented; the failing case's
//! inputs are printed instead.

pub mod test_runner {
    //! Config and deterministic RNG.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-input generation.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seed directly.
        pub fn new(seed: u64) -> Rng {
            Rng { state: seed }
        }

        /// Deterministic seed derived from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Rng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng::new(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Uniform choice among boxed alternatives — built by [`prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// Choose uniformly among `arms`.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let i = rng.below(self.arms.len() as u128) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Helper used by [`prop_oneof!`] to erase each arm's type.
    pub fn union_arm<V: Debug, S: Strategy<Value = V> + 'static>(s: S) -> BoxedStrategy<V> {
        Box::new(s)
    }
}

pub mod arbitrary {
    //! `any::<T>()` over primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryPrim: Debug + Sized {
        /// Draw a uniformly random value.
        fn draw(rng: &mut Rng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl ArbitraryPrim for $t {
                fn draw(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryPrim for bool {
        fn draw(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-range strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::draw(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values, length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn` runs `cases` times over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = String::new();
                    $(__s.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "),
                        &$arg
                    ));)+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?} ({} vs {})",
                __l, __r, stringify!($left), stringify!($right)
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                __l, __r, format!($($fmt)+)
            );
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!(
                "prop_assert_ne failed: both sides are {:?} ({} vs {})",
                __l,
                stringify!($left),
                stringify!($right)
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::Rng::from_name("x::y");
        let mut b = crate::test_runner::Rng::from_name("x::y");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::Rng::new(42);
        for _ in 0..10_000 {
            let v = (-64i64..64).generate(&mut rng);
            assert!((-64..64).contains(&v));
            let u = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&u));
            let f = (0.0f64..10.0).generate(&mut rng);
            assert!((0.0..10.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_runs(xs in prop::collection::vec(any::<u8>(), 1..16), n in 1u64..100) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.len() < 16);
            prop_assert!((1..100).contains(&n));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            Just(99u64),
            100u64..200,
        ]) {
            prop_assert!(v < 10 || v == 99 || (100..200).contains(&v));
        }
    }
}
