//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the tiny API subset it uses: [`Mutex`] and [`RwLock`]
//! that return guards directly (no `Result`) and ignore poisoning, matching
//! parking_lot's semantics on the paths this workspace exercises.

use std::sync::{self, LockResult, TryLockError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
