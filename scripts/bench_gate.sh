#!/bin/sh
# Benchmark regression gate: regenerate the gated paperbench figures and
# diff them against the committed baselines in results/. Fails when a
# gated metric (read-path open speedup, write-path refresh speedup,
# Table II shim-overhead ratio, metadata ops-per-open reduction and
# MDS-storm speedup, index-residency memory/latency ratios, list-I/O vs
# sieving/per-extent speedups, burst-buffer destage overlap speedup,
# data-cache warm-vs-cold and readahead speedups)
# regresses by more than the threshold.
# Only runner-speed-independent ratios are gated, so the comparison is
# meaningful across machines; CI runs this as a blocking job.
#
#   BENCH_GATE_THRESHOLD=0.30 scripts/bench_gate.sh
#   BENCH_GATE_QUICK=1 scripts/bench_gate.sh    # reduced volumes where the
#       gated ratios are scale-stable and deterministic (metadata,
#       indexscale, noncontig); readpath/writepath/table2 always run at
#       paper scale — their measured speedups get noisy or volume-dependent
#       at quick scale
set -eu

threshold=${BENCH_GATE_THRESHOLD:-0.30}
quick=""
[ "${BENCH_GATE_QUICK:-0}" = "1" ] && quick="--quick"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Regenerate the gated figures at the same scale as the committed files
# (or --quick where the gated ratios do not depend on volume).
cargo run --offline --release -q -p bench --bin paperbench -- \
    readpath --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    writepath --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    table2 --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    metadata $quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    indexscale $quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    noncontig $quick --emit-json "$tmp" > /dev/null
# staging2 and readcache always run at paper scale: their gated ratios are
# costed from op counts at fixed preset rates (deterministic, sub-second
# even at paper scale) but their values shift with workload volume, so the
# regen must match the committed baseline's scale.
cargo run --offline --release -q -p bench --bin paperbench -- \
    staging2 --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    readcache --emit-json "$tmp" > /dev/null

status=0
for fig in readpath writepath table2 metadata indexscale noncontig staging2 readcache; do
    base="results/BENCH_${fig}.json"
    fresh="$tmp/BENCH_${fig}.json"
    if [ ! -f "$base" ]; then
        echo "bench_gate: no committed baseline $base, skipping"
        continue
    fi
    echo "== $fig (threshold ${threshold}) =="
    if cargo run --offline --release -q -p plfs-tools -- \
        benchgate "$base" "$fresh" --threshold "$threshold"; then
        echo "bench_gate: $fig ok"
    else
        echo "bench_gate: $fig REGRESSED"
        status=1
    fi
done
exit $status
