#!/bin/sh
# Benchmark regression gate: regenerate the gated paperbench figures and
# diff them against the committed baselines in results/. Fails when a
# gated metric (read-path open speedup, write-path refresh speedup,
# Table II shim-overhead ratio, metadata ops-per-open reduction and
# MDS-storm speedup, index-residency memory/latency ratios) regresses by
# more than the threshold. Only runner-speed-independent
# ratios are gated, so the comparison is meaningful across machines; CI
# runs this as a non-blocking job to start.
#
#   BENCH_GATE_THRESHOLD=0.30 scripts/bench_gate.sh
set -eu

threshold=${BENCH_GATE_THRESHOLD:-0.30}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Regenerate the gated figures at the same scale as the committed files.
cargo run --offline --release -q -p bench --bin paperbench -- \
    readpath --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    writepath --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    table2 --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    metadata --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    indexscale --emit-json "$tmp" > /dev/null

status=0
for fig in readpath writepath table2 metadata indexscale; do
    base="results/BENCH_${fig}.json"
    fresh="$tmp/BENCH_${fig}.json"
    if [ ! -f "$base" ]; then
        echo "bench_gate: no committed baseline $base, skipping"
        continue
    fi
    echo "== $fig (threshold ${threshold}) =="
    if cargo run --offline --release -q -p plfs-tools -- \
        benchgate "$base" "$fresh" --threshold "$threshold"; then
        echo "bench_gate: $fig ok"
    else
        echo "bench_gate: $fig REGRESSED"
        status=1
    fi
done
exit $status
