#!/bin/sh
# Tier-1 verification: build, full test suite, lint. Run from the repo root.
set -eu

cargo build --release --offline
cargo test --workspace -q --offline
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "verify: OK"
