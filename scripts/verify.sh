#!/bin/sh
# Tier-1 verification: build, full test suite, lint, bench smoke.
# Run from the repo root.
set -eu

cargo build --release --offline
cargo test --workspace -q --offline
cargo clippy --workspace --offline --all-targets -- -D warnings

# plfs-lint gate: the workspace must be clean under the project's own
# static rules — the per-line set (panic-in-ffi, ffi-barrier,
# errno-discipline, relaxed-ordering-audit, lock-across-io,
# no-direct-backing-io) plus the call-graph passes (deadlock-cycle,
# signal-safety, errno-clobber, symbol-coverage).
# Exit code 1 + a findings listing on any hit.
cargo run --offline --release -q -p plfs-tools -- lint .

# SARIF round-trip: the --sarif renderer's output must satisfy the
# independent sarifcheck validator (version, driver, ruleIndex
# back-references, 1-based regions). Catches renderer schema drift.
sarif_tmp=$(mktemp)
cargo run --offline --release -q -p plfs-tools -- lint . --sarif > "$sarif_tmp" || true
cargo run --offline --release -q -p plfs-tools -- sarifcheck "$sarif_tmp"
rm -f "$sarif_tmp"

# Bench smoke: a fast pass through the micro benches (CRITERION_QUICK
# shrinks the measurement budget; benches still execute every group).
CRITERION_QUICK=1 cargo bench --offline -p bench --bench micro_plfs
CRITERION_QUICK=1 cargo bench --offline -p bench --bench micro_shim

# paperbench --emit-json round-trip: the emitted BENCH_*.json must parse
# back through jsonlite (schema drift in the emitter fails here).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cargo run --offline --release -q -p bench --bin paperbench -- \
    readpath --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    writepath --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    table2 --gb 1 --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    metadata --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    indexscale --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    noncontig --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    staging2 --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p bench --bin paperbench -- \
    readcache --quick --emit-json "$tmp" > /dev/null
cargo run --offline --release -q -p plfs-tools -- benchcheck "$tmp"/BENCH_*.json

echo "verify: OK"
